//! Set-associative cache with true-LRU replacement.

/// Static geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `line_bytes * assoc * num_sets`.
    pub size_bytes: u64,
    /// Line (block) size in bytes; power of two.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheConfig {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (see [`CacheConfig::validate`]).
    pub fn new(size_bytes: u64, line_bytes: u64, assoc: u32) -> Self {
        let c = CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
        };
        c.validate();
        c
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }

    /// Check invariants: powers of two, at least one set, non-zero ways.
    ///
    /// # Panics
    /// Panics with a descriptive message on invalid geometry.
    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc >= 1, "associativity must be >= 1");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.assoc as u64),
            "capacity must be a multiple of line_bytes * assoc"
        );
        let sets = self.num_sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0,1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty victim was evicted (miss path only).
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch; smallest = LRU victim.
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache (timing/state only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.num_sets();
        Cache {
            cfg,
            lines: vec![Line::default(); (sets * cfg.assoc as u64) as usize],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.set_shift >> self.set_mask.count_ones()
    }

    /// Access the line containing `addr`. On a miss the line is allocated
    /// (write-allocate) and the LRU way of the set is the victim.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.assoc as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        // Hit path.
        for line in set_lines.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss: pick an invalid way, else the LRU way.
        self.stats.misses += 1;
        let victim = set_lines
            .iter()
            .enumerate()
            .find(|(_, l)| !l.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set_lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .map(|(i, _)| i)
                    .expect("set has at least one way")
            });
        let line = &mut set_lines[victim];
        let writeback = line.valid && line.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Insert the line containing `addr` without touching hit/miss
    /// statistics — the prefetch fill path. Victim selection is the same
    /// LRU policy; a dirty victim's write-back is counted.
    pub fn fill(&mut self, addr: u64) {
        if self.contains(addr) {
            return;
        }
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.assoc as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];
        let victim = set_lines
            .iter()
            .enumerate()
            .find(|(_, l)| !l.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set_lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .map(|(i, _)| i)
                    .expect("set has at least one way")
            });
        let line = &mut set_lines[victim];
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
        }
        *line = Line {
            tag,
            valid: true,
            dirty: false,
            last_use: self.tick,
        };
    }

    /// Probe without modifying state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.assoc as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate every line (e.g. to model a destructive flush). Returns
    /// the number of dirty lines discarded-as-written-back.
    pub fn flush_all(&mut self) -> u64 {
        let mut wb = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                wb += 1;
            }
            *line = Line::default();
        }
        self.stats.writebacks += wb;
        wb
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheConfig::new(256, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(256, 48, 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same 64B line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines whose (addr >> 6) is even.
        c.access(0x0000, false); // A
        c.access(0x0080, false); // B (same set 0, different tag)
        c.access(0x0000, false); // touch A -> B is LRU
        c.access(0x0100, false); // C evicts B
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0080));
        assert!(c.contains(0x0100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x0000, true); // dirty A
        c.access(0x0080, false); // B
        c.access(0x0100, false); // evicts A (LRU) -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(0x0000, false);
        c.access(0x0080, false);
        c.access(0x0100, false);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x0000, false);
        c.access(0x0000, true); // hit, now dirty
        c.access(0x0080, false);
        c.access(0x0100, false); // evict A
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_all_counts_dirty_lines() {
        let mut c = small();
        c.access(0x0000, true);
        c.access(0x0040, false);
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.flush_all(), 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(0x0000));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        c.access(0x0000, false); // set 0
        c.access(0x0040, false); // set 1
        c.access(0x0080, false); // set 0
        c.access(0x00c0, false); // set 1
        // 2 ways per set: everything still resident.
        assert_eq!(c.resident_lines(), 4);
        assert!(c.contains(0x0000) && c.contains(0x0040));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().miss_rate(), 0.0);
    }
}
