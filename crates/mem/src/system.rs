//! Two-level hierarchy with a shared L2 and DRAM, including port
//! contention between the two cores.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Kind of memory access issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Ifetch,
    /// Data load (L1D).
    Load,
    /// Data store (L1D, write-allocate).
    Store,
}

/// Timing and geometry parameters of the hierarchy.
///
/// Defaults follow Table I of the paper (4 KB L1s, 128 KB shared L2) with
/// SESC-era latencies for a 2 GHz core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache geometry (per core).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (per core).
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (load-to-use).
    pub l1_latency: u32,
    /// Additional latency of an L2 hit.
    pub l2_latency: u32,
    /// Additional latency of a DRAM access.
    pub dram_latency: u32,
    /// Minimum cycles between successive L2 accesses (port occupancy).
    pub l2_occupancy: u32,
    /// Minimum cycles between successive DRAM accesses (channel occupancy).
    pub dram_occupancy: u32,
    /// Next-line prefetch on L1D load misses (a simple hardware stream
    /// prefetcher; fills L1D and L2 off the critical path).
    pub next_line_prefetch: bool,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig::new(4 * 1024, 64, 2),
            l1d: CacheConfig::new(4 * 1024, 64, 2),
            l2: CacheConfig::new(128 * 1024, 64, 8),
            l1_latency: 2,
            l2_latency: 12,
            dram_latency: 200,
            l2_occupancy: 2,
            dram_occupancy: 16,
            next_line_prefetch: true,
        }
    }
}

/// The dual-core memory system: per-core L1I/L1D, shared L2, DRAM.
///
/// All methods take the current cycle so the busy-until port model can
/// serialize concurrent requests from the two cores — this is how
/// co-runner interference in the shared L2/memory path arises.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    l2_free_at: u64,
    dram_free_at: u64,
    /// Number of accesses that reached DRAM.
    pub dram_accesses: u64,
}

impl MemSystem {
    /// Build the hierarchy for `num_cores` cores.
    pub fn new(cfg: MemConfig, num_cores: usize) -> Self {
        MemSystem {
            cfg,
            l1i: (0..num_cores).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..num_cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: Cache::new(cfg.l2),
            l2_free_at: 0,
            dram_free_at: 0,
            dram_accesses: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores served.
    pub fn num_cores(&self) -> usize {
        self.l1d.len()
    }

    /// Perform an access for `core` at cycle `now`; returns the total
    /// latency in cycles until the data is usable.
    pub fn access(&mut self, core: usize, kind: AccessKind, addr: u64, now: u64) -> u32 {
        let is_write = matches!(kind, AccessKind::Store);
        let l1 = match kind {
            AccessKind::Ifetch => &mut self.l1i[core],
            AccessKind::Load | AccessKind::Store => &mut self.l1d[core],
        };
        let l1_out = l1.access(addr, is_write);
        if l1_out.hit {
            return self.cfg.l1_latency;
        }

        // L1 miss -> L2, serialized on the shared L2 port.
        let l2_start = now.max(self.l2_free_at);
        self.l2_free_at = l2_start + self.cfg.l2_occupancy as u64;
        let queue_delay = (l2_start - now) as u32;
        // A dirty L1 victim writes back into the L2 (state update only; the
        // writeback is off the critical path of the miss).
        if l1_out.writeback {
            self.l2.access(addr, true);
        }
        let l2_out = self.l2.access(addr, false);
        let mut latency = self.cfg.l1_latency + queue_delay + self.cfg.l2_latency;
        if !l2_out.hit {
            // L2 miss -> DRAM, serialized on the channel.
            let t_after_l2 = now + latency as u64;
            let dram_start = t_after_l2.max(self.dram_free_at);
            self.dram_free_at = dram_start + self.cfg.dram_occupancy as u64;
            latency += (dram_start - t_after_l2) as u32 + self.cfg.dram_latency;
            self.dram_accesses += 1;
        }
        // Stream prefetch: a load miss pulls the next line into L1D/L2 off
        // the critical path (no latency charged; occupancy modeled only by
        // the demand stream). This is what lets strided FP codes (swim,
        // equake) run ahead of the 4 KB L1D, as any 2000s-era prefetcher
        // would.
        if self.cfg.next_line_prefetch && matches!(kind, AccessKind::Load) {
            let next = addr + self.cfg.l1d.line_bytes;
            self.l2.fill(next);
            self.l1d[core].fill(next);
        }
        latency
    }

    /// Statistics of one core's L1I.
    pub fn l1i_stats(&self, core: usize) -> &CacheStats {
        self.l1i[core].stats()
    }

    /// Statistics of one core's L1D.
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.l1d[core].stats()
    }

    /// Statistics of the shared L2.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Reset all statistics (cache contents are kept).
    pub fn reset_stats(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.reset_stats();
        }
        self.l2.reset_stats();
        self.dram_accesses = 0;
    }

    /// Flush one core's L1 caches (used by swap-cost ablations that model a
    /// destructive context transfer).
    pub fn flush_core_l1s(&mut self, core: usize) {
        self.l1i[core].flush_all();
        self.l1d[core].flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::default(), 2)
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = sys();
        let cold = m.access(0, AccessKind::Load, 0x1000, 0);
        assert!(cold > m.config().l1_latency, "first access must miss");
        let warm = m.access(0, AccessKind::Load, 0x1000, 10);
        assert_eq!(warm, m.config().l1_latency);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let mut m = sys();
        let dram = m.access(0, AccessKind::Load, 0x2000, 0);
        // Line now in L2 (and core 0's L1). Core 1 misses L1, hits L2.
        let l2 = m.access(1, AccessKind::Load, 0x2000, 1000);
        assert!(l2 < dram, "L2 hit ({l2}) must beat DRAM ({dram})");
        assert_eq!(m.dram_accesses, 1);
    }

    #[test]
    fn ifetch_uses_l1i_not_l1d() {
        let mut m = sys();
        m.access(0, AccessKind::Ifetch, 0x3000, 0);
        assert_eq!(m.l1i_stats(0).misses, 1);
        assert_eq!(m.l1d_stats(0).misses, 0);
        // Data access to the same address still misses L1D.
        let lat = m.access(0, AccessKind::Load, 0x3000, 10);
        assert!(lat > m.config().l1_latency);
    }

    #[test]
    fn per_core_l1s_are_private() {
        let mut m = sys();
        m.access(0, AccessKind::Load, 0x4000, 0);
        let other = m.access(1, AccessKind::Load, 0x4000, 100);
        assert!(
            other > m.config().l1_latency,
            "core 1 must not hit in core 0's L1"
        );
        assert_eq!(m.l1d_stats(1).misses, 1);
    }

    #[test]
    fn l2_port_contention_delays_back_to_back_misses() {
        let cfg = MemConfig {
            l2_occupancy: 10,
            ..MemConfig::default()
        };
        let mut m = MemSystem::new(cfg, 2);
        // Two different lines in the same cycle, both L1 misses.
        let a = m.access(0, AccessKind::Load, 0x10_000, 0);
        let b = m.access(1, AccessKind::Load, 0x20_000, 0);
        assert!(b >= a, "second request queues behind the L2 port");
        assert!(b as u64 >= cfg.l2_occupancy as u64);
    }

    #[test]
    fn store_miss_allocates_and_dirties() {
        let mut m = sys();
        m.access(0, AccessKind::Store, 0x5000, 0);
        assert_eq!(m.l1d_stats(0).misses, 1);
        let hit = m.access(0, AccessKind::Load, 0x5000, 10);
        assert_eq!(hit, m.config().l1_latency);
    }

    #[test]
    fn flush_core_l1s_forces_remisses() {
        let mut m = sys();
        m.access(0, AccessKind::Load, 0x6000, 0);
        m.flush_core_l1s(0);
        let lat = m.access(0, AccessKind::Load, 0x6000, 100);
        assert!(lat > m.config().l1_latency, "flushed line must miss L1");
        // But it should still hit in L2 (flush is L1-only).
        assert!(lat < m.config().l1_latency + m.config().l2_latency + m.config().dram_latency);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = sys();
        m.access(0, AccessKind::Load, 0x7000, 0);
        m.reset_stats();
        assert_eq!(m.l1d_stats(0).accesses(), 0);
        assert_eq!(m.l2_stats().accesses(), 0);
        assert_eq!(m.dram_accesses, 0);
    }
}
