//! # ampsched-mem
//!
//! Cache hierarchy and DRAM timing model for the AMP simulator.
//!
//! The paper's dual-core machine (Table I) has per-core 4 KB L1 instruction
//! and data caches and a shared 128 KB L2. This crate provides:
//!
//! * [`Cache`] — a set-associative, write-back, write-allocate cache with
//!   true-LRU replacement and per-cache statistics;
//! * [`MemSystem`] — the two-level hierarchy with a shared L2 and a DRAM
//!   backend, including simple bandwidth contention (busy-until port model)
//!   so co-running threads interfere in the L2/memory path exactly as the
//!   paper's multiprogrammed workloads do.
//!
//! The hierarchy is *timing only*: no data is stored, each access returns
//! the latency (in core cycles) until the requested line is usable.

pub mod cache;
pub mod system;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use system::{AccessKind, MemConfig, MemSystem};
