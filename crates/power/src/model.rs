//! Per-core energy model derived from the core and cache configurations.

use ampsched_cpu::{ActivityCounters, CoreConfig};
use ampsched_isa::ops::NUM_OP_CLASSES;
use ampsched_isa::OpClass;
use ampsched_mem::MemConfig;

use crate::scaling::{
    array_access_scale, leakage_scale, PIPELINED_ENERGY_FACTOR, PIPELINED_LEAKAGE_FACTOR,
};

const PJ: f64 = 1e-12;

/// Reference sizes against which structure energies scale.
const REF_L1: u64 = 4 * 1024;
const REF_ROB: u64 = 96;
const REF_ISQ: u64 = 32;
const REF_REGS: u64 = 96;
const REF_LSQ: u64 = 16;

/// Base per-op FU energies in pJ for a *non-pipelined* unit, indexed by
/// [`OpClass::index`] (mem/branch entries cover AGU/branch-unit work).
const FU_ENERGY_PJ: [f64; NUM_OP_CLASSES] = [
    40.0,  // IntAlu
    120.0, // IntMul
    250.0, // IntDiv
    150.0, // FpAlu
    220.0, // FpMul
    400.0, // FpDiv
    30.0,  // Load (AGU)
    30.0,  // Store (AGU)
    15.0,  // Branch unit
];

/// Base per-unit FU leakage in pJ/cycle for a non-pipelined unit.
const FU_LEAK_PJ: [f64; 6] = [15.0, 25.0, 30.0, 30.0, 35.0, 40.0];

/// Converts one core's activity counters to joules.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    e_icache: f64,
    e_dcache: f64,
    e_dispatch: f64,
    e_isq_int_insert: f64,
    e_isq_fp_insert: f64,
    e_isq_wakeup: f64,
    e_int_reg_read: f64,
    e_int_reg_write: f64,
    e_fp_reg_read: f64,
    e_fp_reg_write: f64,
    e_fu: [f64; NUM_OP_CLASSES],
    e_lsq_insert: f64,
    e_bpred: f64,
    e_commit: f64,
    static_per_cycle: f64,
    frequency_hz: f64,
}

impl EnergyModel {
    /// Derive all coefficients from the core and cache configurations.
    pub fn new(core: &CoreConfig, mem: &MemConfig) -> Self {
        let l1i_scale = array_access_scale(mem.l1i.size_bytes, REF_L1);
        let l1d_scale = array_access_scale(mem.l1d.size_bytes, REF_L1);
        let rob_scale = array_access_scale(core.rob_size as u64, REF_ROB);
        let int_isq_scale = array_access_scale(core.int_isq as u64, REF_ISQ);
        let fp_isq_scale = array_access_scale(core.fp_isq as u64, REF_ISQ);
        let int_reg_scale = array_access_scale(core.int_regs as u64, REF_REGS);
        let fp_reg_scale = array_access_scale(core.fp_regs as u64, REF_REGS);
        let lsq_scale =
            array_access_scale((core.lsq_loads + core.lsq_stores) as u64, 2 * REF_LSQ);

        let mut e_fu = [0.0; NUM_OP_CLASSES];
        for (i, e) in e_fu.iter_mut().enumerate() {
            let base = FU_ENERGY_PJ[i] * PJ;
            *e = if i < 6 && core.fu[i].pipelined {
                base * PIPELINED_ENERGY_FACTOR
            } else {
                base
            };
        }

        // Static power: clock tree + per-structure leakage (linear in
        // capacity) + functional-unit leakage (pipelined units leak more).
        let mut leak_pj = 100.0 // clock tree
            + 50.0 // misc frontend logic
            // 10 pJ/cycle per KB of private L1.
            + 10.0 * leakage_scale(mem.l1i.size_bytes + mem.l1d.size_bytes, 1024)
            + 0.3 * core.rob_size as f64
            + 0.5 * (core.lsq_loads + core.lsq_stores) as f64
            + 0.3 * (core.int_regs + core.fp_regs) as f64
            + 0.6 * (core.int_isq + core.fp_isq) as f64
            // Half of the shared L2's leakage attributed to each core.
            + 1.0 * (mem.l2.size_bytes as f64 / 1024.0) / 2.0;
        for (i, &l) in FU_LEAK_PJ.iter().enumerate() {
            let spec = core.fu[i];
            let f = if spec.pipelined {
                PIPELINED_LEAKAGE_FACTOR
            } else {
                1.0
            };
            leak_pj += l * f * spec.units as f64;
        }

        EnergyModel {
            e_icache: 60.0 * PJ * l1i_scale,
            e_dcache: 60.0 * PJ * l1d_scale,
            e_dispatch: (10.0 + 25.0 * rob_scale) * PJ,
            e_isq_int_insert: 12.0 * PJ * int_isq_scale,
            e_isq_fp_insert: 12.0 * PJ * fp_isq_scale,
            e_isq_wakeup: 1.0 * PJ,
            e_int_reg_read: 8.0 * PJ * int_reg_scale,
            e_int_reg_write: 10.0 * PJ * int_reg_scale,
            e_fp_reg_read: 8.0 * PJ * fp_reg_scale,
            e_fp_reg_write: 10.0 * PJ * fp_reg_scale,
            e_fu,
            e_lsq_insert: 10.0 * PJ * lsq_scale,
            e_bpred: 12.0 * PJ,
            e_commit: 15.0 * PJ * rob_scale,
            static_per_cycle: leak_pj * PJ,
            frequency_hz: core.frequency_ghz * 1e9,
        }
    }

    /// Dynamic (activity-proportional) energy in joules.
    pub fn dynamic_energy(&self, a: &ActivityCounters) -> f64 {
        let mut e = 0.0;
        e += a.icache_accesses as f64 * self.e_icache;
        e += a.dcache_accesses as f64 * self.e_dcache;
        e += a.dispatches as f64 * self.e_dispatch;
        e += a.isq_int_inserts as f64 * self.e_isq_int_insert;
        e += a.isq_fp_inserts as f64 * self.e_isq_fp_insert;
        e += (a.isq_int_wakeups + a.isq_fp_wakeups) as f64 * self.e_isq_wakeup;
        e += a.int_reg_reads as f64 * self.e_int_reg_read;
        e += a.int_reg_writes as f64 * self.e_int_reg_write;
        e += a.fp_reg_reads as f64 * self.e_fp_reg_read;
        e += a.fp_reg_writes as f64 * self.e_fp_reg_write;
        for (i, &n) in a.fu_ops.iter().enumerate() {
            e += n as f64 * self.e_fu[i];
        }
        e += a.lsq_inserts as f64 * self.e_lsq_insert;
        e += a.bpred_lookups as f64 * self.e_bpred;
        e += a.commits as f64 * self.e_commit;
        e
    }

    /// Static (leakage + clock) energy for the counted cycles, in joules.
    pub fn static_energy(&self, a: &ActivityCounters) -> f64 {
        a.cycles as f64 * self.static_per_cycle
    }

    /// Total energy in joules for one activity window.
    pub fn energy(&self, a: &ActivityCounters) -> f64 {
        self.dynamic_energy(a) + self.static_energy(a)
    }

    /// Static power in watts.
    pub fn static_watts(&self) -> f64 {
        self.static_per_cycle * self.frequency_hz
    }

    /// Average power in watts over one activity window.
    /// Returns the static power for an empty (zero-cycle) window.
    pub fn avg_watts(&self, a: &ActivityCounters) -> f64 {
        if a.cycles == 0 {
            return self.static_watts();
        }
        let seconds = a.cycles as f64 / self.frequency_hz;
        self.energy(a) / seconds
    }

    /// Per-op energy of one FU class on this core (tests/diagnostics).
    pub fn fu_energy(&self, class: OpClass) -> f64 {
        self.e_fu[class.index()]
    }

    /// Per-component energy breakdown for one activity window, in joules,
    /// as `(component, joules)` pairs. The sum of all entries equals
    /// [`EnergyModel::energy`]. This is the Wattch-style report the paper's
    /// power methodology produces per structure.
    pub fn breakdown(&self, a: &ActivityCounters) -> Vec<(&'static str, f64)> {
        let fu_arith: f64 = a.fu_ops[..6]
            .iter()
            .zip(&self.e_fu[..6])
            .map(|(n, e)| *n as f64 * e)
            .sum();
        let fu_mem_br: f64 = a.fu_ops[6..]
            .iter()
            .zip(&self.e_fu[6..])
            .map(|(n, e)| *n as f64 * e)
            .sum();
        vec![
            ("L1I", a.icache_accesses as f64 * self.e_icache),
            ("L1D", a.dcache_accesses as f64 * self.e_dcache),
            ("rename+ROB", a.dispatches as f64 * self.e_dispatch),
            (
                "issue queues",
                a.isq_int_inserts as f64 * self.e_isq_int_insert
                    + a.isq_fp_inserts as f64 * self.e_isq_fp_insert
                    + (a.isq_int_wakeups + a.isq_fp_wakeups) as f64 * self.e_isq_wakeup,
            ),
            (
                "register files",
                a.int_reg_reads as f64 * self.e_int_reg_read
                    + a.int_reg_writes as f64 * self.e_int_reg_write
                    + a.fp_reg_reads as f64 * self.e_fp_reg_read
                    + a.fp_reg_writes as f64 * self.e_fp_reg_write,
            ),
            ("functional units", fu_arith),
            ("AGU/branch units", fu_mem_br),
            ("LSQ", a.lsq_inserts as f64 * self.e_lsq_insert),
            ("branch predictor", a.bpred_lookups as f64 * self.e_bpred),
            ("commit", a.commits as f64 * self.e_commit),
            ("static (leak+clock)", self.static_energy(a)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (EnergyModel, EnergyModel) {
        let mem = MemConfig::default();
        (
            EnergyModel::new(&CoreConfig::int_core(), &mem),
            EnergyModel::new(&CoreConfig::fp_core(), &mem),
        )
    }

    fn busy_activity() -> ActivityCounters {
        let mut a = ActivityCounters::new();
        a.cycles = 1_000_000;
        a.dispatches = 900_000;
        a.commits = 900_000;
        a.icache_accesses = 100_000;
        a.dcache_accesses = 250_000;
        a.isq_int_inserts = 500_000;
        a.isq_fp_inserts = 200_000;
        a.isq_int_wakeups = 8_000_000;
        a.isq_fp_wakeups = 3_000_000;
        a.int_reg_reads = 800_000;
        a.int_reg_writes = 500_000;
        a.fp_reg_reads = 300_000;
        a.fp_reg_writes = 200_000;
        a.fu_ops[OpClass::IntAlu.index()] = 400_000;
        a.fu_ops[OpClass::FpAlu.index()] = 150_000;
        a.fu_ops[OpClass::Load.index()] = 180_000;
        a.fu_ops[OpClass::Store.index()] = 70_000;
        a.fu_ops[OpClass::Branch.index()] = 100_000;
        a.lsq_inserts = 250_000;
        a.bpred_lookups = 100_000;
        a
    }

    #[test]
    fn zero_activity_is_static_only() {
        let (m, _) = models();
        let mut a = ActivityCounters::new();
        a.cycles = 1000;
        assert_eq!(m.dynamic_energy(&a), 0.0);
        assert!(m.static_energy(&a) > 0.0);
        assert!((m.avg_watts(&a) - m.static_watts()).abs() < 1e-9);
    }

    #[test]
    fn energy_monotonic_in_activity() {
        let (m, _) = models();
        let a = busy_activity();
        let mut more = a;
        more.fu_ops[OpClass::FpDiv.index()] += 100_000;
        assert!(m.energy(&more) > m.energy(&a));
    }

    #[test]
    fn pipelined_units_cost_more_per_op() {
        let (int_m, fp_m) = models();
        // IntAlu is pipelined (strong) on the INT core only.
        assert!(int_m.fu_energy(OpClass::IntAlu) > fp_m.fu_energy(OpClass::IntAlu));
        // FpAlu is pipelined (strong) on the FP core only.
        assert!(fp_m.fu_energy(OpClass::FpAlu) > int_m.fu_energy(OpClass::FpAlu));
    }

    #[test]
    fn static_power_is_plausible_and_core_dependent() {
        let (int_m, fp_m) = models();
        for m in [&int_m, &fp_m] {
            let w = m.static_watts();
            assert!((0.3..5.0).contains(&w), "static power {w} W out of range");
        }
        // The FP core's big pipelined FP units leak more than the INT
        // core's pipelined integer units.
        assert!(fp_m.static_watts() > int_m.static_watts());
        // ...but they are the same order of magnitude.
        assert!(fp_m.static_watts() < 1.5 * int_m.static_watts());
    }

    #[test]
    fn busy_core_total_power_is_plausible() {
        let (m, _) = models();
        let w = m.avg_watts(&busy_activity());
        assert!((0.5..8.0).contains(&w), "busy power {w} W out of range");
        assert!(w > m.static_watts());
    }

    #[test]
    fn bigger_caches_cost_more_per_access() {
        let core = CoreConfig::int_core();
        let small = MemConfig::default();
        let big = MemConfig {
            l1d: ampsched_mem::CacheConfig::new(16 * 1024, 64, 2),
            ..MemConfig::default()
        };
        let m_small = EnergyModel::new(&core, &small);
        let m_big = EnergyModel::new(&core, &big);
        let mut a = ActivityCounters::new();
        a.dcache_accesses = 1000;
        assert!(m_big.dynamic_energy(&a) > m_small.dynamic_energy(&a));
    }

    #[test]
    fn breakdown_sums_to_total_energy() {
        let (m, _) = models();
        let a = busy_activity();
        let parts: f64 = m.breakdown(&a).iter().map(|(_, j)| j).sum();
        let total = m.energy(&a);
        assert!(
            (parts - total).abs() < 1e-12 * total.max(1.0),
            "breakdown {parts} != total {total}"
        );
        // Every component label unique and every value non-negative.
        let b = m.breakdown(&a);
        let mut names: Vec<_> = b.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), b.len());
        assert!(b.iter().all(|(_, j)| *j >= 0.0));
    }

    #[test]
    fn register_file_size_scales_energy() {
        let (int_m, fp_m) = models();
        let mut a = ActivityCounters::new();
        a.int_reg_reads = 1000;
        // INT core has 96 int regs vs the FP core's 48: costlier reads.
        assert!(int_m.dynamic_energy(&a) > fp_m.dynamic_energy(&a));
        let mut b = ActivityCounters::new();
        b.fp_reg_reads = 1000;
        assert!(fp_m.dynamic_energy(&b) > int_m.dynamic_energy(&b));
    }
}
