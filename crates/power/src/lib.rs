//! # ampsched-power
//!
//! Activity-based power model in the spirit of Wattch \[19\] + CACTI \[20\],
//! modified (as in the paper) to account for static power dissipation.
//!
//! The methodology is the same as Wattch's:
//!
//! * each microarchitectural structure has a per-access **dynamic energy**
//!   that scales with its size (CACTI-style square-root scaling for array
//!   structures, linear CAM scaling for wakeup logic);
//! * each structure **leaks** in proportion to its area proxy, every cycle,
//!   whether used or not;
//! * a **clock tree** burns a fixed energy per cycle.
//!
//! [`EnergyModel`] derives all coefficients from a core's
//! [`ampsched_cpu::CoreConfig`] and the [`ampsched_mem::MemConfig`] cache
//! geometry, then converts the core's [`ampsched_cpu::ActivityCounters`]
//! into joules. Absolute values are uncalibrated (we have no circuit
//! netlists), but *ratios* — between core types and between workloads —
//! are what every experiment in the paper consumes, and those are
//! preserved by construction: bigger/faster (pipelined) structures cost
//! more energy per op and leak more.

pub mod account;
pub mod model;
pub mod scaling;

pub use account::EnergyAccount;
pub use model::EnergyModel;
