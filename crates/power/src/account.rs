//! Windowed energy accounting for one core.

use ampsched_cpu::ActivityCounters;

use crate::model::EnergyModel;

/// Accumulates a core's energy over windows and over the whole run.
///
/// The system driver feeds it the activity delta at the end of each
/// monitoring window; the scheduler and the metrics layer read back
/// per-window and cumulative joules.
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    model: EnergyModel,
    total_joules: f64,
    last_window_joules: f64,
    windows: u64,
}

impl EnergyAccount {
    /// New empty account for a core described by `model`.
    pub fn new(model: EnergyModel) -> Self {
        EnergyAccount {
            model,
            total_joules: 0.0,
            last_window_joules: 0.0,
            windows: 0,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Account one window of activity; returns the window's joules.
    pub fn account(&mut self, activity: &ActivityCounters) -> f64 {
        let j = self.model.energy(activity);
        self.total_joules += j;
        self.last_window_joules = j;
        self.windows += 1;
        j
    }

    /// Cumulative joules since construction (or [`EnergyAccount::reset`]).
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// Joules of the most recent window.
    pub fn last_window_joules(&self) -> f64 {
        self.last_window_joules
    }

    /// Number of windows accounted.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Zero the accumulators (model is kept).
    pub fn reset(&mut self) {
        self.total_joules = 0.0;
        self.last_window_joules = 0.0;
        self.windows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsched_cpu::CoreConfig;
    use ampsched_mem::MemConfig;

    fn account() -> EnergyAccount {
        EnergyAccount::new(EnergyModel::new(
            &CoreConfig::int_core(),
            &MemConfig::default(),
        ))
    }

    #[test]
    fn accumulates_windows() {
        let mut acc = account();
        let mut a = ActivityCounters::new();
        a.cycles = 1000;
        a.commits = 800;
        let w1 = acc.account(&a);
        let w2 = acc.account(&a);
        assert!(w1 > 0.0);
        assert!((w1 - w2).abs() < 1e-18);
        assert!((acc.total_joules() - (w1 + w2)).abs() < 1e-18);
        assert_eq!(acc.windows(), 2);
        assert!((acc.last_window_joules() - w2).abs() < 1e-18);
    }

    #[test]
    fn reset_clears() {
        let mut acc = account();
        let mut a = ActivityCounters::new();
        a.cycles = 10;
        acc.account(&a);
        acc.reset();
        assert_eq!(acc.total_joules(), 0.0);
        assert_eq!(acc.windows(), 0);
    }
}
