//! CACTI-style size scaling helpers.
//!
//! CACTI models the access energy of an SRAM array as growing roughly with
//! the square root of its capacity (wordline/bitline lengths grow with the
//! array's linear dimension), and leakage as growing linearly with
//! capacity. We use those two functional forms for every array structure.

/// Per-access energy scale factor for an array of `size` relative to an
/// array of `ref_size` (square-root scaling).
///
/// # Panics
/// Panics if either size is zero.
pub fn array_access_scale(size: u64, ref_size: u64) -> f64 {
    assert!(size > 0 && ref_size > 0, "array sizes must be positive");
    (size as f64 / ref_size as f64).sqrt()
}

/// Leakage scale factor (linear in capacity).
///
/// # Panics
/// Panics if either size is zero.
pub fn leakage_scale(size: u64, ref_size: u64) -> f64 {
    assert!(size > 0 && ref_size > 0, "array sizes must be positive");
    size as f64 / ref_size as f64
}

/// Energy multiplier for an aggressively pipelined functional unit vs. its
/// non-pipelined counterpart: pipeline registers and wider transistors
/// cost both dynamic energy and leakage (Wattch's "aggressive" style).
pub const PIPELINED_ENERGY_FACTOR: f64 = 1.35;

/// Leakage multiplier for a pipelined unit.
pub const PIPELINED_LEAKAGE_FACTOR: f64 = 1.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_scale_is_sqrt() {
        assert!((array_access_scale(4096, 1024) - 2.0).abs() < 1e-12);
        assert!((array_access_scale(1024, 1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_scale_is_linear() {
        assert!((leakage_scale(4096, 1024) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_is_costlier() {
        assert!(array_access_scale(8192, 4096) > 1.0);
        assert!(leakage_scale(8192, 4096) > array_access_scale(8192, 4096));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        array_access_scale(0, 1);
    }
}
