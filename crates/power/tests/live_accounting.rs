//! Energy accounting integrated with the live core model: the power
//! model's qualitative claims checked against real activity, not
//! hand-built counters.

use ampsched_cpu::{Core, CoreConfig};
use ampsched_mem::{MemConfig, MemSystem};
use ampsched_power::{EnergyAccount, EnergyModel};
use ampsched_trace::{suite, TraceGenerator};

fn run_and_account(core_cfg: CoreConfig, bench: &str, cycles: u64) -> (f64, f64, u64) {
    let model = EnergyModel::new(&core_cfg, &MemConfig::default());
    let mut acc = EnergyAccount::new(model.clone());
    let mut core = Core::new(core_cfg, 0);
    let mut mem = MemSystem::new(MemConfig::default(), 1);
    let mut w = TraceGenerator::for_thread(suite::by_name(bench).expect("bench"), 5, 0);
    let mut committed = 0u64;
    for now in 0..cycles {
        committed += core.tick(now, &mut w, &mut mem) as u64;
    }
    let act = core.activity.take();
    let joules = acc.account(&act);
    let static_j = model.static_energy(&act);
    (joules, static_j, committed)
}

#[test]
fn busy_cores_burn_more_than_idle_cores() {
    // intstress on the INT core commits ~4x what it does on the FP core;
    // its dynamic energy must be correspondingly higher, while static
    // energy is fixed per cycle.
    let (j_int, s_int, c_int) = run_and_account(CoreConfig::int_core(), "intstress", 200_000);
    let (j_fp, s_fp, c_fp) = run_and_account(CoreConfig::fp_core(), "intstress", 200_000);
    assert!(c_int > 2 * c_fp, "INT core commits much more: {c_int} vs {c_fp}");
    let dyn_int = j_int - s_int;
    let dyn_fp = j_fp - s_fp;
    assert!(
        dyn_int > 1.5 * dyn_fp,
        "more work must cost more dynamic energy: {dyn_int} vs {dyn_fp}"
    );
}

#[test]
fn energy_per_instruction_is_plausible() {
    // Wattch-era cores land around 0.1–3 nJ/instruction all-in.
    for (cfg, bench) in [
        (CoreConfig::int_core(), "sha"),
        (CoreConfig::fp_core(), "equake"),
        (CoreConfig::morphed_strong(), "pi"),
    ] {
        let name = cfg.name;
        let (joules, _, committed) = run_and_account(cfg, bench, 300_000);
        assert!(committed > 10_000, "{name}/{bench} must make progress");
        let epi = joules / committed as f64;
        assert!(
            (5e-11..5e-9).contains(&epi),
            "{name}/{bench}: energy/instruction {epi:.3e} J out of plausible range"
        );
    }
}

#[test]
fn stalled_cores_pay_static_power_only() {
    // A core with a stalled frontend commits nothing but still leaks.
    let cfg = CoreConfig::int_core();
    let model = EnergyModel::new(&cfg, &MemConfig::default());
    let mut core = Core::new(cfg, 0);
    let mut mem = MemSystem::new(MemConfig::default(), 1);
    let mut w = TraceGenerator::for_thread(suite::by_name("sha").expect("bench"), 5, 0);
    core.stall_until(100_000);
    for now in 0..100_000u64 {
        core.tick(now, &mut w, &mut mem);
    }
    let act = core.activity.take();
    assert_eq!(act.commits, 0);
    let joules = model.energy(&act);
    let static_j = model.static_energy(&act);
    // Nearly all energy is static (only the stall bookkeeping is free).
    assert!(joules <= static_j * 1.001, "stalled energy {joules} vs static {static_j}");
    assert!(static_j > 0.0);
}

#[test]
fn fp_work_costs_more_on_the_core_with_strong_fp_units() {
    // Per-op energy on pipelined units is higher; running the same FP
    // workload, the FP core does more FP ops AND pays more per op, so
    // dynamic power is clearly higher.
    let (j_fp, s_fp, c_fp) = run_and_account(CoreConfig::fp_core(), "fpstress", 200_000);
    let (j_int, s_int, c_int) = run_and_account(CoreConfig::int_core(), "fpstress", 200_000);
    let watts_like = |j: f64, s: f64| j - s; // same cycle count both runs
    assert!(c_fp > c_int);
    assert!(watts_like(j_fp, s_fp) > watts_like(j_int, s_int));
    // But IPC/Watt still favors the FP core (the paper's whole premise):
    // energy per instruction is lower where the work flows freely.
    assert!((j_fp / c_fp as f64) < (j_int / c_int as f64));
}
