//! Property tests for the observability primitives: histogram bucket
//! boundaries are total and contiguous over `u64`, and JSONL telemetry
//! records always render as a single parseable line, no matter what
//! bytes end up in string fields (workload labels, error messages).
//! Runs on the in-tree `util::check` harness with a fixed seed.

use ampsched_obs::metrics::{bucket_bounds, bucket_index, BUCKETS};
use ampsched_util::check::{Checker, Source};
use ampsched_util::{prop_assert, prop_assert_eq, Json};

const SEED: u64 = 0x5c4e_0b50;

fn checker() -> Checker {
    Checker::new(SEED).cases(128).suite("obs")
}

/// Spread samples across all magnitudes: draw an exponent first so high
/// buckets are exercised as often as low ones.
fn arb_sample(s: &mut Source) -> u64 {
    let exp = s.u32_in(0, 63);
    let base = 1u64 << exp;
    base.saturating_add(s.u64_in(0, base.saturating_sub(1).max(1)))
}

#[test]
fn hist_bucket_boundaries() {
    checker().run(
        "hist_bucket_boundaries",
        |s: &mut Source| {
            let v = if s.bool() { arb_sample(s) } else { s.u64_in(0, 8) };
            let delta = s.u64_in(0, 1 << 40);
            (v, delta)
        },
        |&(v, delta)| {
            // The sample lands inside its bucket's inclusive bounds.
            let idx = bucket_index(v);
            prop_assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {idx})");
            // Buckets tile u64 with no gap or overlap.
            if idx + 1 < BUCKETS {
                let (next_lo, _) = bucket_bounds(idx + 1);
                prop_assert_eq!(next_lo, hi + 1, "gap after bucket {}", idx);
            }
            // Index is monotone in the sample value.
            let w = v.saturating_add(delta);
            prop_assert!(
                bucket_index(w) >= idx,
                "bucket_index not monotone: {} -> {}",
                v,
                w
            );
            Ok(())
        },
    );
}

/// Arbitrary string including JSON-hostile content: quotes, backslashes,
/// newlines, control characters, multi-byte and astral code points.
fn arb_string(s: &mut Source) -> String {
    s.vec_with(0, 24, |s| {
        *s.choice(&[
            '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1b}', '\u{7f}', 'a', 'Z', '0', ' ', 'é',
            'µ', '中', '\u{1F600}', '\u{2028}', '\u{2029}',
        ])
    })
    .into_iter()
    .collect()
}

/// A telemetry-record-shaped document with hostile strings and the full
/// numeric range the audit trail emits (including null for NaN-free
/// optional fields).
fn arb_record(s: &mut Source) -> Json {
    let mispredict = if s.bool() {
        Json::from(s.f64_in(-10.0, 10.0))
    } else {
        Json::Null
    };
    Json::obj([
        ("type", Json::from("decision")),
        ("pair", Json::from(arb_string(s))),
        ("scheduler", Json::from(arb_string(s))),
        ("cycle", Json::from(s.u64_in(0, u64::MAX - 1))),
        ("swap", Json::from(s.bool())),
        ("mispredict", mispredict),
        (
            "threads",
            Json::arr((0..2).map(|_| {
                Json::obj([
                    ("int_pct", Json::from(s.f64_in(0.0, 100.0))),
                    ("ipc_per_watt", Json::from(s.f64_in(0.0, 1e6))),
                ])
            })),
        ),
    ])
}

#[test]
fn jsonl_records_are_single_line_and_round_trip() {
    checker().run(
        "jsonl_records_are_single_line_and_round_trip",
        arb_record,
        |doc| {
            let line = doc.render();
            // JSONL invariant: the compact rendering never contains a raw
            // line terminator, whatever the input strings held.
            prop_assert!(!line.contains('\n'), "raw newline in {line:?}");
            prop_assert!(!line.contains('\r'), "raw carriage return in {line:?}");
            // And the line parses back to the same document.
            let parsed = Json::parse(&line).map_err(|e| {
                ampsched_util::check::Failure::Fail(format!("reparse failed: {e:?} for {line:?}"))
            })?;
            prop_assert_eq!(&parsed, doc);
            Ok(())
        },
    );
}
