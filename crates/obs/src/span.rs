//! RAII wall-clock timing spans with Chrome trace-event export.
//!
//! A span measures one region of *host* time (never simulated time). The
//! [`span!`](macro@crate::span) macro returns a guard; dropping it records a
//! complete event. Spans nest naturally — about://tracing stacks
//! same-thread events by timestamp containment, so no explicit parent
//! bookkeeping is needed.
//!
//! Recording is off by default: starting a span is then a single relaxed
//! atomic load and the guard does not read the clock at all. The
//! experiments CLI enables recording for `--profile` and
//! `--trace-events` runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Master switch; when false spans cost one atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default cap on buffered events: a runaway instrumentation loop
/// degrades to a counter instead of exhausting memory.
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// Current cap on buffered events (see [`set_event_cap`]).
static EVENT_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_EVENT_CAP);

/// Spans dropped at the cap since the last [`clear`]. Mirrored into the
/// `obs.spans.dropped` metrics counter; kept separately so the trace
/// export can emit a truncation marker without a registry lookup.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Enable or disable span recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resize the buffered-event cap (minimum 1). Already-buffered events
/// are kept even if they exceed a smaller new cap; only new recordings
/// are refused. Intended for tests and embedding tools.
pub fn set_event_cap(cap: usize) {
    EVENT_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// Current cap on buffered events.
pub fn event_cap() -> usize {
    EVENT_CAP.load(Ordering::Relaxed)
}

/// Spans silently refused at the cap since the last [`clear`]. Also
/// counted by the `obs.spans.dropped` metrics counter.
pub fn dropped_count() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Host microseconds since the process-wide obs epoch. Shared with the
/// [flight recorder](crate::ring) so span and ring timestamps line up.
pub(crate) fn micros_since_epoch() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Stable small integer per OS thread for the trace `tid` field.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One completed span.
#[derive(Debug, Clone)]
struct SpanEvent {
    name: &'static str,
    label: Option<String>,
    tid: u64,
    ts_us: u64,
    dur_us: u64,
}

fn events() -> &'static Mutex<Vec<SpanEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Guard for an in-flight span; records a complete event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    label: Option<String>,
    start_us: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_us = micros_since_epoch();
        crate::ring::event("span", self.name.to_string());
        let mut buf = events().lock().expect("span buffer lock");
        if buf.len() >= event_cap() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            crate::counter!("obs.spans.dropped");
            return;
        }
        buf.push(SpanEvent {
            name: self.name,
            label: self.label.take(),
            tid: current_tid(),
            ts_us: self.start_us,
            dur_us: end_us.saturating_sub(self.start_us),
        });
    }
}

/// Start a span named `name`. Prefer the [`span!`](macro@crate::span) macro.
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None)
}

/// Start a span with a per-instance label (e.g. the workload pair).
/// Aggregation keys on `name` alone; the label shows up in trace events.
pub fn span_labeled(name: &'static str, label: String) -> SpanGuard {
    span_inner(name, Some(label))
}

fn span_inner(name: &'static str, label: Option<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            label: None,
            start_us: 0,
            active: false,
        };
    }
    SpanGuard {
        name,
        label,
        start_us: micros_since_epoch(),
        active: true,
    }
}

/// Total duration and hit count per span name, sorted by name — the
/// shape `ampsched-util`'s `Profiler::add` accepts, so span totals merge
/// straight into `--profile` reports.
pub fn aggregate() -> Vec<(String, Duration, u64)> {
    let buf = events().lock().expect("span buffer lock");
    let mut totals: Vec<(String, Duration, u64)> = Vec::new();
    for ev in buf.iter() {
        match totals.iter_mut().find(|(n, _, _)| n == ev.name) {
            Some((_, d, c)) => {
                *d += Duration::from_micros(ev.dur_us);
                *c += 1;
            }
            None => totals.push((ev.name.to_string(), Duration::from_micros(ev.dur_us), 1)),
        }
    }
    totals.sort_by(|a, b| a.0.cmp(&b.0));
    totals
}

/// Number of events currently buffered.
pub fn event_count() -> usize {
    events().lock().expect("span buffer lock").len()
}

/// Discard all buffered events and reset the dropped-span count.
pub fn clear() {
    events().lock().expect("span buffer lock").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Write all buffered events to `path` in Chrome trace-event JSON
/// (load the file in about://tracing or <https://ui.perfetto.dev>).
/// Buffered [profiler](crate::profiler) samples are spliced in as
/// counter tracks (simulated-cycle timestamps under their own pid).
/// Returns the number of events written.
pub fn write_trace_events(path: &std::path::Path) -> std::io::Result<usize> {
    use ampsched_util::Json;
    let buf = events().lock().expect("span buffer lock");
    let mut all: Vec<Json> = buf
        .iter()
        .map(|ev| {
            let name = match &ev.label {
                Some(l) => format!("{} {}", ev.name, l),
                None => ev.name.to_string(),
            };
            Json::obj([
                ("name", Json::from(name)),
                ("cat", Json::from("ampsched")),
                ("ph", Json::from("X")),
                ("ts", Json::from(ev.ts_us)),
                ("dur", Json::from(ev.dur_us)),
                ("pid", Json::from(std::process::id())),
                ("tid", Json::from(ev.tid)),
            ])
        })
        .collect();
    drop(buf);
    // Truncation is never silent: if the cap refused spans, plant a
    // global instant marker so the viewer shows the trace is partial.
    let dropped = dropped_count();
    if dropped > 0 {
        all.push(Json::obj([
            (
                "name",
                Json::from(format!("TRUNCATED: {dropped} spans dropped at cap")),
            ),
            ("cat", Json::from("ampsched")),
            ("ph", Json::from("i")),
            ("s", Json::from("g")),
            ("ts", Json::from(micros_since_epoch())),
            ("pid", Json::from(std::process::id())),
            ("tid", Json::from(current_tid())),
        ]));
    }
    all.extend(crate::profiler::trace_counter_events());
    let count = all.len();
    let trace = Json::obj([
        ("traceEvents", Json::Arr(all)),
        ("displayTimeUnit", Json::from("ms")),
    ]);
    std::fs::write(path, trace.render())?;
    Ok(count)
}

/// Start a span: `let _s = obs::span!("system.run");` or, with a label,
/// `obs::span!("run_pair", pair.label())`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::span($name)
    };
    ($name:literal, $label:expr) => {
        $crate::span::span_labeled($name, ::std::string::String::from($label))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the enable switch and event buffer are
    // process-global, so parallel test functions would race.
    #[test]
    fn span_recording_lifecycle() {
        set_enabled(false);
        {
            let _s = span("test.span.off");
        }
        set_enabled(true);
        {
            let _a = span("test.span.outer");
            let _b = span_labeled("test.span.inner", "x".to_string());
            let _c = span_labeled("test.span.inner", "y".to_string());
        }
        set_enabled(false);
        let agg = aggregate();
        assert!(!agg.iter().any(|(n, _, _)| n == "test.span.off"));
        let inner = agg.iter().find(|(n, _, _)| n == "test.span.inner");
        assert_eq!(inner.map(|(_, _, c)| *c), Some(2));
        let outer = agg.iter().find(|(n, _, _)| n == "test.span.outer");
        assert_eq!(outer.map(|(_, _, c)| *c), Some(1));

        // Overflowing the cap is counted and marked, never silent.
        clear();
        assert_eq!(dropped_count(), 0);
        set_enabled(true);
        set_event_cap(2);
        for _ in 0..5 {
            let _s = span("test.span.overflow");
        }
        set_enabled(false);
        assert_eq!(event_count(), 2, "cap bounds the buffer");
        assert_eq!(dropped_count(), 3, "overflow is counted");
        let path = std::env::temp_dir().join(format!(
            "ampsched-span-truncation-test-{}.json",
            std::process::id()
        ));
        write_trace_events(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("TRUNCATED: 3 spans dropped at cap"),
            "trace export carries a truncation marker"
        );
        let _ = std::fs::remove_file(&path);
        set_event_cap(DEFAULT_EVENT_CAP);
        clear();
        assert_eq!(dropped_count(), 0, "clear resets the dropped count");
    }
}
