//! The flight recorder: a fixed-capacity ring buffer of recent
//! observability events.
//!
//! Metrics answer "how much"; the flight recorder answers "what happened
//! just before it went wrong". Producers push short events ([`event`]) —
//! log lines, span edges, request transitions, job executions — into a
//! process-global ring that keeps only the most recent `capacity`
//! entries. When something goes wrong (a worker panic, a deadline
//! expiry) the ring is dumped as JSONL to a configured path
//! ([`set_dump_path`] + [`dump_now`]); `ampsched serve` also exposes it
//! on demand at `GET /debugz/flight`.
//!
//! Recording is off by default — [`event`] is then a single relaxed
//! atomic load — and enabled by the serve daemon (and tests) via
//! [`set_enabled`]. Like every `ampsched-obs` facility, the ring is
//! read-only with respect to simulation state: it observes, it never
//! feeds back.
//!
//! ## Determinism
//!
//! Event payloads carry no wall-clock-derived values except the `ts_us`
//! field itself: two identical serve runs produce identical dumps once
//! `ts_us` is masked out (enforced by `serve_obs` in
//! `ampsched-experiments`). Keep it that way — a producer that embeds a
//! duration or a timestamp in `detail` breaks the property.

use ampsched_util::Json;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default number of events the ring retains.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded event. `seq` is a monotone per-process sequence number
/// (it keeps counting across wraps, so gaps reveal how much history the
/// ring has already shed); `ts_us` is host microseconds since the obs
/// epoch and is the only non-deterministic field.
#[derive(Debug, Clone)]
pub struct RingEvent {
    /// Monotone sequence number (never reused until [`reset`]).
    pub seq: u64,
    /// Host microseconds since the process obs epoch.
    pub ts_us: u64,
    /// Event category (`"log"`, `"span"`, `"request.begin"`, ...).
    pub kind: &'static str,
    /// Short free-form payload. Must not embed clock-derived values.
    pub detail: String,
}

impl RingEvent {
    /// Render as one compact JSON object (always a single line: JSON
    /// string escaping removes raw newlines).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("ts_us", Json::from(self.ts_us)),
            ("kind", Json::from(self.kind)),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }
}

struct Ring {
    events: VecDeque<RingEvent>,
    capacity: usize,
    next_seq: u64,
    dump_path: Option<PathBuf>,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dump_path: None,
        })
    })
}

/// Enable or disable recording process-wide. Disabled, [`event`] is a
/// single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resize the ring (minimum 1); oldest events are shed immediately if
/// the new capacity is smaller.
pub fn set_capacity(capacity: usize) {
    let mut r = ring().lock().expect("flight recorder lock");
    r.capacity = capacity.max(1);
    while r.events.len() > r.capacity {
        r.events.pop_front();
    }
}

/// Configure (or clear) the file [`dump_now`] writes to on a panic or
/// deadline-expiry trigger. The file holds the *latest* dump — each
/// trigger overwrites it whole.
pub fn set_dump_path(path: Option<PathBuf>) {
    ring().lock().expect("flight recorder lock").dump_path = path;
}

/// Record one event. A no-op (one atomic load) when recording is off.
pub fn event(kind: &'static str, detail: String) {
    if !enabled() {
        return;
    }
    let ts_us = crate::span::micros_since_epoch();
    let mut r = ring().lock().expect("flight recorder lock");
    let seq = r.next_seq;
    r.next_seq += 1;
    if r.events.len() >= r.capacity {
        r.events.pop_front();
    }
    r.events.push_back(RingEvent {
        seq,
        ts_us,
        kind,
        detail,
    });
}

/// Copy of the buffered events, oldest first.
pub fn snapshot() -> Vec<RingEvent> {
    ring()
        .lock()
        .expect("flight recorder lock")
        .events
        .iter()
        .cloned()
        .collect()
}

/// Render the whole ring as JSONL (one compact object per line, oldest
/// first). Empty string when nothing is buffered.
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for ev in snapshot() {
        out.push_str(&ev.to_json().render());
        out.push('\n');
    }
    out
}

/// Dump the ring to the configured path (see [`set_dump_path`]),
/// recording a `flight.dump` event with the trigger `reason` first so
/// the file is self-describing. Returns the number of events written,
/// `None` when no dump path is configured. Best-effort by design: an
/// I/O failure is logged, never propagated into the failing request.
pub fn dump_now(reason: &str) -> Option<usize> {
    let path = ring().lock().expect("flight recorder lock").dump_path.clone()?;
    event("flight.dump", reason.to_string());
    let body = to_jsonl();
    let count = body.lines().count();
    if let Err(e) = std::fs::write(&path, body) {
        crate::error!("flight", "cannot write dump to {}: {}", path.display(), e);
        return None;
    }
    Some(count)
}

/// Discard all buffered events and restart the sequence counter (the
/// capacity, enable flag, and dump path are preserved). For tests and
/// the serve determinism harness.
pub fn reset() {
    let mut r = ring().lock().expect("flight recorder lock");
    r.events.clear();
    r.next_seq = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the ring is process-global, so parallel test functions
    // would interleave events.
    #[test]
    fn ring_lifecycle_wrap_and_dump() {
        set_enabled(false);
        reset();
        event("test", "ignored while disabled".to_string());
        assert!(snapshot().is_empty());

        set_enabled(true);
        set_capacity(3);
        for i in 0..5u64 {
            event("test.ring", format!("e{i}"));
        }
        let evs = snapshot();
        assert_eq!(evs.len(), 3, "capacity bounds the ring");
        // Oldest events shed; seq keeps counting so the gap is visible.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(evs[0].detail, "e2");

        // JSONL form: one parseable object per line, newline-free.
        let jsonl = to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let doc = ampsched_util::Json::parse(line).expect("line parses");
            assert_eq!(doc.get("kind").and_then(Json::as_str), Some("test.ring"));
        }

        // Dump: no path configured → None; with a path → file written
        // with the trigger event appended.
        assert_eq!(dump_now("test-trigger"), None);
        let path = std::env::temp_dir().join(format!(
            "ampsched-flight-test-{}.jsonl",
            std::process::id()
        ));
        set_dump_path(Some(path.clone()));
        let n = dump_now("test-trigger").expect("dump with a path");
        assert_eq!(n, 3, "capacity 3: dump event displaced the oldest");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().last().unwrap().contains("flight.dump"));
        assert!(text.lines().last().unwrap().contains("test-trigger"));

        set_dump_path(None);
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
        reset();
        let _ = std::fs::remove_file(&path);
    }
}
