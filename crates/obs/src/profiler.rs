//! Sampled per-cycle pipeline profiler.
//!
//! Every Nth *simulated* cycle the system run loops record one
//! [`PipeSample`] per core: structure occupancies, the cumulative
//! committed count, and a stall-cause code (the caller defines the code
//! space — `ampsched-cpu`'s `StallCause` — this crate only buckets it).
//! Sampling is process-global like the [span](mod@crate::span) collector:
//! off by default, enabled by the experiments CLI for `--profile` runs.
//!
//! The cadence is deterministic in simulated time: samples land at exact
//! multiples of the configured interval regardless of host speed, skip
//! jumps, or scheduler behavior, so two runs of the same experiment
//! produce identical sample streams. Skip-ahead regions are quiescent by
//! construction (no commit, dispatch, issue, or memory traffic), so the
//! run loops re-emit the then-current snapshot at each crossed sample
//! point — the stream looks exactly as if every cycle had been ticked.
//!
//! Like every other instrument in this crate the profiler is read-only
//! with respect to simulation state: it observes values the pipeline
//! already maintains and feeds nothing back, so enabling it leaves
//! `--json` reports byte-identical (enforced by
//! `differential_telemetry` in `ampsched-experiments`).

use ampsched_util::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on caller-defined stall-cause codes (inclusive cap on
/// distinct causes; `ampsched-cpu` uses 5).
pub const MAX_STALL_CODES: usize = 8;

/// Cap on buffered samples: ~96 MiB of samples at most, after which the
/// profiler degrades to a drop counter instead of exhausting memory.
const MAX_SAMPLES: usize = 1 << 21;

/// One sampled pipeline observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeSample {
    /// Simulated cycle the sample was taken at (a multiple of the
    /// configured interval).
    pub cycle: u64,
    /// Core index the sample describes.
    pub core: u8,
    /// Caller-defined stall-cause code, `< MAX_STALL_CODES`.
    pub stall: u8,
    /// Occupied reorder-buffer slots.
    pub rob: u32,
    /// Integer issue-queue entries.
    pub isq_int: u32,
    /// Floating-point issue-queue entries.
    pub isq_fp: u32,
    /// Load-queue entries.
    pub lq: u32,
    /// Store-queue entries.
    pub sq: u32,
    /// Cumulative committed instructions on the core at the sample.
    pub committed: u64,
    /// Peak sustainable issue slots per cycle on the core.
    pub issue_slots: u32,
}

/// Sampling interval in simulated cycles; 0 = disabled.
static INTERVAL: AtomicU64 = AtomicU64::new(0);

fn samples() -> &'static Mutex<Vec<PipeSample>> {
    static SAMPLES: OnceLock<Mutex<Vec<PipeSample>>> = OnceLock::new();
    SAMPLES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Enable sampling every `interval` simulated cycles (0 disables).
pub fn set_interval(interval: u64) {
    INTERVAL.store(interval, Ordering::Relaxed);
}

/// Current sampling interval; 0 when disabled. Run loops read this once
/// at run start — the disabled cost is one relaxed load per run, not
/// per cycle.
pub fn interval() -> u64 {
    INTERVAL.load(Ordering::Relaxed)
}

/// Record one sample. Drops (and counts) past the buffer cap.
pub fn record(sample: PipeSample) {
    debug_assert!((sample.stall as usize) < MAX_STALL_CODES);
    let mut buf = samples().lock().expect("profiler buffer lock");
    if buf.len() >= MAX_SAMPLES {
        crate::counter!("obs.profiler.dropped");
        return;
    }
    buf.push(sample);
}

/// Copy of every buffered sample, in recording order.
pub fn snapshot() -> Vec<PipeSample> {
    samples().lock().expect("profiler buffer lock").clone()
}

/// Number of buffered samples.
pub fn sample_count() -> usize {
    samples().lock().expect("profiler buffer lock").len()
}

/// Discard all buffered samples.
pub fn clear() {
    samples().lock().expect("profiler buffer lock").clear();
}

/// Aggregated view of one core's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSummary {
    /// Core index.
    pub core: u8,
    /// Samples aggregated.
    pub samples: u64,
    /// Mean occupancies over all samples.
    pub mean_rob: f64,
    /// Mean integer issue-queue occupancy.
    pub mean_isq_int: f64,
    /// Mean floating-point issue-queue occupancy.
    pub mean_isq_fp: f64,
    /// Mean load-queue occupancy.
    pub mean_lq: f64,
    /// Mean store-queue occupancy.
    pub mean_sq: f64,
    /// Committed instructions per issue slot per cycle over the sampled
    /// span (committed delta / (cycle delta × issue slots)) — the
    /// steady-state issue-width utilization.
    pub issue_utilization: f64,
    /// Sample counts per stall-cause code. Sums to `samples` — every
    /// sample lands in exactly one bucket (cause totality).
    pub stall_counts: [u64; MAX_STALL_CODES],
}

/// Aggregate the buffered samples per core, sorted by core index.
pub fn summarize() -> Vec<CoreSummary> {
    let buf = samples().lock().expect("profiler buffer lock");
    let mut out: Vec<CoreSummary> = Vec::new();
    for s in buf.iter() {
        let entry = match out.iter_mut().find(|c| c.core == s.core) {
            Some(e) => e,
            None => {
                out.push(CoreSummary {
                    core: s.core,
                    samples: 0,
                    mean_rob: 0.0,
                    mean_isq_int: 0.0,
                    mean_isq_fp: 0.0,
                    mean_lq: 0.0,
                    mean_sq: 0.0,
                    issue_utilization: 0.0,
                    stall_counts: [0; MAX_STALL_CODES],
                });
                out.last_mut().expect("just pushed")
            }
        };
        // Accumulate sums first; divide into means below.
        entry.samples += 1;
        entry.mean_rob += s.rob as f64;
        entry.mean_isq_int += s.isq_int as f64;
        entry.mean_isq_fp += s.isq_fp as f64;
        entry.mean_lq += s.lq as f64;
        entry.mean_sq += s.sq as f64;
        entry.stall_counts[(s.stall as usize).min(MAX_STALL_CODES - 1)] += 1;
    }
    for c in &mut out {
        let n = c.samples as f64;
        c.mean_rob /= n;
        c.mean_isq_int /= n;
        c.mean_isq_fp /= n;
        c.mean_lq /= n;
        c.mean_sq /= n;
        // Utilization needs first/last samples of this core.
        let first = buf.iter().find(|s| s.core == c.core).expect("core seen");
        let last = buf.iter().rev().find(|s| s.core == c.core).expect("core seen");
        let cycles = last.cycle.saturating_sub(first.cycle);
        let slots = first.issue_slots as f64;
        c.issue_utilization = if cycles > 0 && slots > 0.0 {
            (last.committed.saturating_sub(first.committed)) as f64 / (cycles as f64 * slots)
        } else {
            0.0
        };
    }
    out.sort_by_key(|c| c.core);
    out
}

/// Render the per-core summaries as JSON. `cause_names` maps stall codes
/// to display names (shorter tables leave trailing codes as `cause<N>`).
pub fn summary_json(cause_names: &[&str]) -> Json {
    let summaries = summarize();
    Json::arr(summaries.iter().map(|c| {
        let named = |i: usize| -> String {
            cause_names
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("cause{i}"))
        };
        Json::obj([
            ("core", Json::from(c.core as u64)),
            ("samples", Json::from(c.samples)),
            ("mean_rob", Json::from(c.mean_rob)),
            ("mean_isq_int", Json::from(c.mean_isq_int)),
            ("mean_isq_fp", Json::from(c.mean_isq_fp)),
            ("mean_lq", Json::from(c.mean_lq)),
            ("mean_sq", Json::from(c.mean_sq)),
            ("issue_utilization", Json::from(c.issue_utilization)),
            (
                "stalls",
                Json::Obj(
                    c.stall_counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, n)| *n > 0)
                        .map(|(i, n)| (named(i), Json::from(*n)))
                        .collect(),
                ),
            ),
        ])
    }))
}

/// Chrome trace-event counter tracks for the buffered samples: one
/// `"ph":"C"` event per sample with the occupancies as series, under a
/// synthetic pid so the simulated-time axis does not interleave with
/// host-time spans. Returns the events as JSON values for
/// [`span::write_trace_events`](crate::span::write_trace_events) to
/// splice into its output.
pub fn trace_counter_events() -> Vec<Json> {
    let buf = samples().lock().expect("profiler buffer lock");
    buf.iter()
        .map(|s| {
            Json::obj([
                ("name", Json::from(format!("pipeline core{}", s.core))),
                ("cat", Json::from("ampsched.pipeline")),
                ("ph", Json::from("C")),
                // Counter tracks use the simulated cycle as the
                // timestamp; pid 0 keeps them on their own process row.
                ("ts", Json::from(s.cycle)),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(s.core as u64)),
                (
                    "args",
                    Json::obj([
                        ("rob", Json::from(s.rob as u64)),
                        ("isq_int", Json::from(s.isq_int as u64)),
                        ("isq_fp", Json::from(s.isq_fp as u64)),
                        ("lq", Json::from(s.lq as u64)),
                        ("sq", Json::from(s.sq as u64)),
                    ]),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the interval switch and sample buffer are process-global,
    // so parallel test functions would race.
    #[test]
    fn profiler_lifecycle() {
        clear();
        assert_eq!(interval(), 0, "sampling starts disabled");
        set_interval(64);
        assert_eq!(interval(), 64);
        for cycle in [64u64, 128, 192] {
            for core in 0..2u8 {
                record(PipeSample {
                    cycle,
                    core,
                    stall: core, // distinct causes per core
                    rob: 10 * (core as u32 + 1),
                    isq_int: 4,
                    isq_fp: 2,
                    lq: 1,
                    sq: 0,
                    committed: cycle * (core as u64 + 1) / 2,
                    issue_slots: 5,
                });
            }
        }
        set_interval(0);
        assert_eq!(sample_count(), 6);
        let summaries = summarize();
        assert_eq!(summaries.len(), 2);
        for (i, c) in summaries.iter().enumerate() {
            assert_eq!(c.core, i as u8);
            assert_eq!(c.samples, 3);
            assert_eq!(c.mean_rob, 10.0 * (i as f64 + 1.0));
            // Totality: every sample lands in exactly one stall bucket.
            assert_eq!(c.stall_counts.iter().sum::<u64>(), c.samples);
            assert_eq!(c.stall_counts[i], 3);
            // committed delta / (cycle delta × slots):
            // core0: (96-32)/(128×5) = 0.1; core1: (192-64)/(128×5) = 0.2.
            let want = 0.1 * (i as f64 + 1.0);
            assert!((c.issue_utilization - want).abs() < 1e-12);
        }
        let json = summary_json(&["a", "b"]).render();
        assert!(json.contains("\"a\"") && json.contains("\"b\""));
        let events = trace_counter_events();
        assert_eq!(events.len(), 6);
        assert!(events[0].render().contains("\"ph\":\"C\""));
        clear();
        assert_eq!(sample_count(), 0);
    }
}
