//! Leveled structured logging with an `AMPSCHED_LOG` environment filter.
//!
//! Lines go to stderr as `[level] target: message key=value ...`. The
//! maximum level is read once from `AMPSCHED_LOG`
//! (`off|error|warn|info|debug`, case-insensitive) and defaults to
//! [`Level::Warn`] — the same stderr behavior the workspace had when
//! cache warnings were raw `eprintln!` calls. `AMPSCHED_LOG=error`
//! silences warnings in batch sweeps; `AMPSCHED_LOG=debug` opens the
//! firehose.
//!
//! ```
//! ampsched_obs::log::set_max_level(Some(ampsched_obs::Level::Info));
//! ampsched_obs::info!("doctest", "hello {}", "world"; answer = 42);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Severity of a log event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Suspicious but recoverable conditions (the default maximum).
    Warn = 2,
    /// High-level progress events.
    Info = 3,
    /// Detailed diagnostics for debugging.
    Debug = 4,
}

impl Level {
    /// The lowercase name used in log lines and `AMPSCHED_LOG`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse an `AMPSCHED_LOG` value. `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;
/// Maximum level that passes the filter; 0 silences everything.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return v;
    }
    let from_env = match std::env::var("AMPSCHED_LOG") {
        Ok(s) if s.trim().eq_ignore_ascii_case("off") => 0,
        Ok(s) => Level::parse(&s).map(|l| l as u8).unwrap_or(Level::Warn as u8),
        Err(_) => Level::Warn as u8,
    };
    // Racing initializers compute the same value; last store wins.
    MAX_LEVEL.store(from_env, Ordering::Relaxed);
    from_env
}

/// Override the maximum level, bypassing `AMPSCHED_LOG`. `None` silences
/// all logging. Intended for tests and embedding tools.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= max_level()
}

/// Optional in-memory capture of formatted lines, used by tests to assert
/// on log output without scraping stderr.
static CAPTURE: Mutex<Option<Vec<String>>> = Mutex::new(None);

/// Start capturing log lines in memory (they still go to stderr).
pub fn capture_start() {
    *CAPTURE.lock().expect("log capture lock") = Some(Vec::new());
}

/// Stop capturing and return everything captured since [`capture_start`].
pub fn capture_take() -> Vec<String> {
    CAPTURE
        .lock()
        .expect("log capture lock")
        .take()
        .unwrap_or_default()
}

/// Format and emit one event. Not called directly — use the
/// [`error!`](macro@crate::error), [`warn!`](macro@crate::warn),
/// [`info!`](macro@crate::info), and [`debug!`](macro@crate::debug)
/// macros, which check [`enabled`] first so arguments are not formatted
/// when filtered.
pub fn write(level: Level, target: &str, args: std::fmt::Arguments<'_>, fields: &[(&str, String)]) {
    use std::fmt::Write as _;
    let mut line = format!("[{}] {target}: {args}", level.name());
    for (k, v) in fields {
        let _ = write!(line, " {k}={v}");
    }
    eprintln!("{line}");
    crate::ring::event("log", line.clone());
    if let Some(buf) = CAPTURE.lock().expect("log capture lock").as_mut() {
        buf.push(line);
    }
}

/// Emit an event at an explicit [`Level`]. The general form behind the
/// per-level macros: `log!(level, target, fmt, args...; key = value, ...)`.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $target:expr, $fmt:literal $(, $arg:expr)* $(; $($k:ident = $v:expr),+)? $(,)?) => {{
        let lvl = $lvl;
        if $crate::log::enabled(lvl) {
            $crate::log::write(
                lvl,
                $target,
                format_args!($fmt $(, $arg)*),
                &[$($((stringify!($k), format!("{}", $v)),)+)?],
            );
        }
    }};
}

/// Emit an [`Level::Error`] event: `error!("target", "fmt {}", x; key = v)`.
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::log!($crate::Level::Error, $($rest)*) };
}

/// Emit a [`Level::Warn`] event: `warn!("target", "fmt {}", x; key = v)`.
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::log!($crate::Level::Warn, $($rest)*) };
}

/// Emit a [`Level::Info`] event: `info!("target", "fmt {}", x; key = v)`.
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::log!($crate::Level::Info, $($rest)*) };
}

/// Emit a [`Level::Debug`] event: `debug!("target", "fmt {}", x; key = v)`.
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::log!($crate::Level::Debug, $($rest)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn filter_and_capture() {
        set_max_level(Some(Level::Info));
        capture_start();
        crate::info!("test.log", "visible {}", 1; k = 7);
        crate::debug!("test.log", "filtered out");
        let lines = capture_take();
        assert_eq!(lines, vec!["[info] test.log: visible 1 k=7".to_string()]);
        set_max_level(Some(Level::Warn));
    }
}
