//! Process-global counters and fixed-bucket histograms.
//!
//! Instruments register themselves by name on first use and live for the
//! life of the process (the registry leaks one allocation per unique
//! name, giving out `&'static` handles that increment with a single
//! relaxed atomic op — no locking after the first touch). The
//! [`counter!`](crate::counter) and [`hist!`](crate::hist) macros cache
//! the handle per call site, so steady-state cost is one atomic
//! fetch-add.
//!
//! Histograms use power-of-two buckets: bucket 0 holds exactly `0`,
//! bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`. Bucket boundaries are
//! total and contiguous over `u64` (see the `prop_obs` property suite).
//!
//! Counter names are dot-separated, lowest-frequency component last
//! (`trace.arena.hit`). The `sim.*` namespace is reserved for values that
//! are a pure function of simulation inputs — those are the only
//! instruments the experiment `--json` telemetry block may include, so
//! the report stays byte-identical across trace provisioning modes and
//! cache temperature.

use ampsched_util::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: `{0}` plus one per power of two.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples.
#[derive(Debug)]
pub struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The bucket a sample lands in: 0 for `v == 0`, else `64 - clz(v)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Estimate the `q`-quantile (`0.0 ..= 1.0`) of a histogram from its
/// non-empty `(lo, hi, count)` buckets, `None` when the histogram holds
/// no samples.
///
/// The estimator walks the cumulative counts to the bucket containing
/// the rank-`ceil(q·n)` sample and interpolates linearly inside that
/// bucket's inclusive `[lo, hi]` range. The true sample provably lies in
/// the same bucket, so the absolute error is bounded by the bucket width
/// — for the power-of-two buckets used here that is a worst-case
/// relative error of 2× (`hi < 2·lo`), and *exact* for buckets 0 and 1
/// (values `0` and `1`). Good enough to tell a 100 µs p99 from a 10 ms
/// one, which is what `/metrics` and `serve-bench` use it for; it is not
/// a substitute for raw samples when single-percent precision matters.
pub fn quantile(buckets: &[(u64, u64, u64)], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().map(|&(_, _, c)| c).sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the sample we are after, 1-based; q = 0 means the minimum.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(lo, hi, count) in buckets {
        if count == 0 {
            continue;
        }
        if seen + count >= rank {
            // The rank-th sample is one of this bucket's `count` samples;
            // interpolate its position across the bucket's value range.
            let into = (rank - seen) as f64 / count as f64;
            let width = (hi - lo) as f64;
            return Some(lo + (width * into) as u64);
        }
        seen += count;
    }
    // Unreachable when bucket counts sum to `total`; be conservative.
    buckets.iter().rev().find(|&&(_, _, c)| c > 0).map(|&(_, hi, _)| hi)
}

/// Inclusive `[lo, hi]` range of values stored in bucket `i`.
///
/// # Panics
/// If `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

struct Registry {
    counters: Vec<(&'static str, &'static Counter)>,
    hists: Vec<(&'static str, &'static Hist)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: Vec::new(),
            hists: Vec::new(),
        })
    })
}

/// Look up (or register) the counter named `name`. The handle is
/// `&'static`: cache it (the [`counter!`](crate::counter) macro does)
/// rather than calling this per event.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some((_, c)) = reg.counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.counters.push((name, c));
    c
}

/// Look up (or register) the histogram named `name`.
pub fn hist(name: &'static str) -> &'static Hist {
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some((_, h)) = reg.hists.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Hist = Box::leak(Box::new(Hist::new()));
    reg.hists.push((name, h));
    h
}

/// Point-in-time copy of every registered instrument, sorted by name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// One entry per histogram.
    pub hists: Vec<HistSnapshot>,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Registered name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Non-empty buckets as `(lo, hi, count)` with inclusive bounds.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistSnapshot {
    /// Estimate the `q`-quantile of this histogram (see [`quantile`] for
    /// the bucket-resolution error bound). `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile(&self.buckets, q)
    }
}

/// Snapshot every registered counter and histogram, sorted by name.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("metrics registry lock");
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .iter()
        .map(|(n, c)| (n.to_string(), c.get()))
        .collect();
    counters.sort();
    let mut hists: Vec<HistSnapshot> = reg
        .hists
        .iter()
        .map(|(n, h)| HistSnapshot {
            name: n.to_string(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            buckets: (0..BUCKETS)
                .filter_map(|i| {
                    let c = h.buckets[i].load(Ordering::Relaxed);
                    (c > 0).then(|| {
                        let (lo, hi) = bucket_bounds(i);
                        (lo, hi, c)
                    })
                })
                .collect(),
        })
        .collect();
    hists.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot { counters, hists }
}

/// Zero every registered instrument (registrations persist). For tests.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry lock");
    for (_, c) in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for (_, h) in &reg.hists {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Snapshot {
    /// What happened *between* two snapshots: per-counter and per-bucket
    /// differences of `self` (the later snapshot) against `earlier`.
    ///
    /// Instruments whose value did not change are dropped entirely, so a
    /// delta taken around a region of work is indistinguishable from a
    /// fresh process that only ran that region — the property the
    /// `ampsched serve` workers rely on to reproduce the CLI's
    /// `telemetry` report block byte-for-byte from a long-running
    /// process (instruments registered by *earlier* requests would
    /// otherwise leak in as zero-valued entries a fresh CLI run never
    /// emits).
    ///
    /// Counters are monotone, so a name missing from `earlier` is
    /// treated as previously 0; per-bucket histogram counts subtract the
    /// same way.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                let d = now.saturating_sub(before);
                (d > 0).then(|| (name.clone(), d))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|now| {
                let before = earlier.hists.iter().find(|h| h.name == now.name);
                let (b_count, b_sum) = before.map(|h| (h.count, h.sum)).unwrap_or((0, 0));
                let d_count = now.count.saturating_sub(b_count);
                if d_count == 0 {
                    return None;
                }
                let buckets = now
                    .buckets
                    .iter()
                    .filter_map(|&(lo, hi, c)| {
                        let b = before
                            .and_then(|h| {
                                h.buckets.iter().find(|&&(l, h2, _)| l == lo && h2 == hi)
                            })
                            .map(|&(_, _, c)| c)
                            .unwrap_or(0);
                        let d = c.saturating_sub(b);
                        (d > 0).then_some((lo, hi, d))
                    })
                    .collect();
                Some(HistSnapshot {
                    name: now.name.clone(),
                    count: d_count,
                    sum: now.sum.wrapping_sub(b_sum),
                    buckets,
                })
            })
            .collect();
        Snapshot { counters, hists }
    }

    /// Keep only instruments whose name starts with `prefix`.
    pub fn filtered(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            hists: self
                .hists
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Render as `{"counters": {...}, "hists": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "hists",
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                Json::obj([
                                    ("count", Json::from(h.count)),
                                    ("sum", Json::from(h.sum)),
                                    (
                                        "buckets",
                                        Json::arr(h.buckets.iter().map(|&(lo, hi, c)| {
                                            Json::obj([
                                                ("lo", Json::from(lo)),
                                                ("hi", Json::from(hi)),
                                                ("count", Json::from(c)),
                                            ])
                                        })),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Increment a named counter: `counter!("sim.swap")` adds 1,
/// `counter!("trace.cache.load_chunks", n)` adds `n`. The instrument
/// handle is resolved once per call site.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics::counter($name)).add($n as u64);
    }};
}

/// Record a sample in a named histogram: `hist!("sim.run.cycles", c)`.
/// The instrument handle is resolved once per call site.
#[macro_export]
macro_rules! hist {
    ($name:literal, $v:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::metrics::Hist> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics::hist($name)).record($v as u64);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registry_dedups() {
        let a = counter("test.metrics.dedup");
        let b = counter("test.metrics.dedup");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn delta_drops_untouched_instruments_and_subtracts_buckets() {
        let c = counter("test.metrics.delta_counter");
        let idle = counter("test.metrics.delta_idle");
        let h = hist("test.metrics.delta_hist");
        idle.add(7); // registered + nonzero *before* the region
        c.add(1);
        h.record(2);
        let before = snapshot();
        c.add(4);
        h.record(2);
        h.record(100);
        let after = snapshot();
        let d = after.delta(&before);
        // The idle counter didn't move inside the region: absent.
        assert!(d.counters.iter().all(|(n, _)| n != "test.metrics.delta_idle"));
        let dc = d
            .counters
            .iter()
            .find(|(n, _)| n == "test.metrics.delta_counter")
            .expect("changed counter present");
        assert_eq!(dc.1, 4);
        let dh = d
            .hists
            .iter()
            .find(|h| h.name == "test.metrics.delta_hist")
            .expect("changed hist present");
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 102);
        // Bucket for value 2 held one sample before, two after: delta 1.
        assert!(dh.buckets.contains(&(2, 3, 1)));
        assert!(dh.buckets.contains(&(64, 127, 1)));
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        counter("test.metrics.delta_noop").add(3);
        let s = snapshot();
        let d = s.delta(&s.clone());
        assert!(d.counters.is_empty(), "{:?}", d.counters);
        assert!(d.hists.is_empty());
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[(4, 7, 0)], 0.99), None);
    }

    #[test]
    fn quantile_single_bucket_interpolates_within_bounds() {
        // All samples in bucket [4, 7]: every quantile estimate must stay
        // inside the bucket, with the extremes pinned by interpolation.
        let b = [(4u64, 7u64, 4u64)];
        assert_eq!(quantile(&b, 0.0), Some(4)); // rank 1 of 4 → 4 + 3·(1/4) = 4
        assert_eq!(quantile(&b, 0.25), Some(4));
        assert_eq!(quantile(&b, 0.5), Some(5)); // rank 2 → 4 + 3·(2/4)
        assert_eq!(quantile(&b, 1.0), Some(7)); // rank 4 → 4 + 3·(4/4)
        // The degenerate buckets are exact for any q.
        assert_eq!(quantile(&[(0, 0, 10)], 0.99), Some(0));
        assert_eq!(quantile(&[(1, 1, 10)], 0.01), Some(1));
    }

    #[test]
    fn quantile_exact_power_of_two_counts_cross_buckets() {
        // 8 samples split 4/4 across buckets [2,3] and [8,15]: the median
        // (rank 4) is the last sample of the low bucket, p75 (rank 6) the
        // middle of the high one, and q just past 0.5 jumps buckets.
        let b = [(2u64, 3u64, 4u64), (8u64, 15u64, 4u64)];
        assert_eq!(quantile(&b, 0.5), Some(3)); // rank 4 → 2 + 1·(4/4)
        assert_eq!(quantile(&b, 0.5001), Some(9)); // rank 5 → 8 + 7·(1/4)
        assert_eq!(quantile(&b, 0.75), Some(11)); // rank 6 → 8 + 7·(2/4)
        assert_eq!(quantile(&b, 1.0), Some(15));
        // End-to-end through a live histogram snapshot.
        let h = hist("test.metrics.quantile_hist");
        for v in [0u64, 1, 2, 100, 100, 100, 100, 100] {
            h.record(v);
        }
        let snap = snapshot();
        let hs = snap
            .hists
            .iter()
            .find(|h| h.name == "test.metrics.quantile_hist")
            .expect("registered");
        assert_eq!(hs.quantile(0.0), Some(0));
        // p99 of 8 samples is rank 8, which lives in bucket [64, 127].
        let p99 = hs.quantile(0.99).unwrap();
        assert!((64..=127).contains(&p99), "p99 {p99} outside its bucket");
    }

    #[test]
    fn hist_snapshot_places_samples() {
        let h = hist("test.metrics.hist");
        h.record(0);
        h.record(5);
        h.record(5);
        let snap = snapshot();
        let hs = snap
            .hists
            .iter()
            .find(|h| h.name == "test.metrics.hist")
            .expect("registered");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 10);
        assert!(hs.buckets.contains(&(0, 0, 1)));
        assert!(hs.buckets.contains(&(4, 7, 2)));
    }
}
