//! # ampsched-obs — hermetic observability
//!
//! Process-global instrumentation for the ampsched workspace, built with
//! zero external dependencies (the PR 1 hermetic-build rule): a leveled
//! structured [logger](mod@log), [counters and fixed-bucket
//! histograms](metrics) with quantile estimation, nesting RAII [timing
//! spans](mod@span) that export to Chrome trace-event JSON, a [JSONL
//! telemetry sink](telemetry) for the scheduler decision audit trail,
//! a [per-request span-group registry](request) with deterministic ids
//! and phase timelines, and a [flight recorder](ring) — a fixed-capacity
//! ring of recent obs events dumped to JSONL when something goes wrong.
//!
//! ## Bit-identity contract
//!
//! Instrumentation is *read-only with respect to simulation state*. Every
//! hook either observes a value the simulation already computed (counters,
//! decision records) or measures wall-clock outside the simulated machine
//! (spans). Nothing here feeds back into a simulated component, so
//! enabling any combination of `AMPSCHED_LOG`, `--telemetry`, and
//! `--trace-events` must leave experiment `--json` reports byte-identical
//! — enforced by `differential_telemetry` in `ampsched-experiments` and a
//! dedicated CI leg.
//!
//! ## Cost when disabled
//!
//! Disabled paths are a single relaxed atomic load (spans, telemetry) or
//! an integer level compare (logging). Counters always count — they are a
//! relaxed fetch-add on a cached `&'static AtomicU64` — but are only ever
//! touched at decision points, multi-cycle skips, and per-chunk trace
//! operations, never inside the per-cycle hot loop.
//!
//! ```
//! ampsched_obs::counter!("demo.events");
//! ampsched_obs::hist!("demo.latency_us", 17u64);
//! let snap = ampsched_obs::metrics::snapshot();
//! assert!(snap.counters.iter().any(|(name, _)| name == "demo.events"));
//! ```

pub mod log;
pub mod metrics;
pub mod profiler;
pub mod request;
pub mod ring;
pub mod span;
pub mod telemetry;

pub use log::Level;
pub use metrics::{Snapshot, BUCKETS};
pub use span::SpanGuard;
