//! JSONL telemetry sink for the scheduler decision audit trail.
//!
//! One process-global sink, installed by the experiments CLI when
//! `--telemetry FILE` is given. Producers build a
//! [`Json`] document per event and call [`emit`];
//! each document is rendered compactly on its own line (JSON string
//! escaping guarantees the rendered form contains no raw newline, so the
//! file is valid JSONL — see the `prop_obs` escaping property).
//!
//! When no sink is installed, [`active`] is a relaxed atomic load and
//! producers skip building documents entirely. Emission never feeds back
//! into simulation state, which is what keeps `--json` reports
//! byte-identical with telemetry on or off.

use ampsched_util::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Whether a telemetry sink is installed. Check this before building
/// event documents; it is a single relaxed atomic load.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Open `path` (truncating) and install it as the process-global sink.
pub fn install(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("telemetry sink lock") = Some(BufWriter::new(file));
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Render `doc` compactly and append it as one line. A no-op when no
/// sink is installed; write errors disable the sink with a logged error
/// rather than panicking mid-experiment.
pub fn emit(doc: &Json) {
    if !active() {
        return;
    }
    let mut guard = SINK.lock().expect("telemetry sink lock");
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let mut line = doc.render();
    line.push('\n');
    if let Err(e) = sink.write_all(line.as_bytes()) {
        crate::error!("telemetry", "write failed, disabling sink: {}", e);
        *guard = None;
        ACTIVE.store(false, Ordering::Relaxed);
        return;
    }
    crate::counter!("obs.telemetry.records");
}

/// Flush and close the sink. Safe to call when none is installed.
pub fn close() {
    let mut guard = SINK.lock().expect("telemetry sink lock");
    if let Some(mut sink) = guard.take() {
        if let Err(e) = sink.flush() {
            crate::error!("telemetry", "flush failed: {}", e);
        }
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_sink_is_noop() {
        // Not installed by default in unit tests.
        emit(&Json::obj([("type", Json::from("noop"))]));
        assert!(!active());
    }
}
