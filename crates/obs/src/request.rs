//! Per-request span groups: deterministic ids, phase timelines, and a
//! bounded history of completed requests.
//!
//! A server (today: `ampsched serve`) calls [`begin`] when it accepts a
//! request, receives a process-unique id (`r-00000000`, `r-00000001`,
//! ...), and then records named phases ([`phase`]) and metadata
//! ([`annotate`]) against that id — possibly from other threads, which
//! is why the registry is keyed by id rather than by a guard value.
//! [`finish`] seals the record with an outcome and moves it into a
//! fixed-capacity history of completed requests ([`completed`]); the
//! in-flight set is visible at any moment via [`inflight`].
//!
//! Ids are assigned from an atomic counter, so an identical sequence of
//! accepted requests yields identical ids — the property the serve
//! determinism tests lean on. Like the rest of `ampsched-obs`, all of
//! this is observation only: nothing here feeds back into scheduling or
//! simulation, and recording is off until [`set_enabled`] turns it on.

use ampsched_util::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Default number of completed requests retained for `/requestz`.
pub const DEFAULT_CAPACITY: usize = 64;

/// One request's record: live while in flight, frozen once finished.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Deterministic id: `r-` + zero-padded accept sequence number.
    pub id: String,
    /// Route the request hit (e.g. `POST /run`).
    pub route: String,
    /// Final outcome (`hit`, `miss`, `coalesced`, `timeout`, ...).
    /// Empty while the request is still in flight.
    pub outcome: String,
    /// Total host microseconds from accept to response written.
    /// Zero while in flight.
    pub total_us: u64,
    /// Ordered phase timeline: (phase name, host microseconds).
    pub phases: Vec<(&'static str, u64)>,
    /// Free-form metadata (cache key, byte counts, status code, ...).
    pub meta: Vec<(&'static str, Json)>,
}

impl RequestRecord {
    /// Render the record as a JSON object. Phases keep their recorded
    /// order as an array of `{"name": ..., "us": ...}` objects; meta
    /// keys are flattened into the top level (they are chosen by the
    /// caller not to collide with the fixed keys).
    pub fn to_json(&self) -> Json {
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|&(name, us)| {
                Json::obj([("name", Json::from(name)), ("us", Json::from(us))])
            })
            .collect();
        let mut fields: Vec<(&str, Json)> = vec![
            ("id", Json::from(self.id.as_str())),
            ("route", Json::from(self.route.as_str())),
            ("outcome", Json::from(self.outcome.as_str())),
            ("total_us", Json::from(self.total_us)),
            ("phases", Json::Arr(phases)),
        ];
        for (k, v) in &self.meta {
            fields.push((k, v.clone()));
        }
        Json::obj(fields)
    }
}

struct Registry {
    inflight: Vec<RequestRecord>,
    completed: VecDeque<RequestRecord>,
    capacity: usize,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            inflight: Vec::new(),
            completed: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
        })
    })
}

/// Enable or disable request recording process-wide. Disabled, every
/// entry point is a single relaxed atomic load and [`begin`] returns
/// `None`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether request recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resize the completed-request history (minimum 1).
pub fn set_capacity(capacity: usize) {
    let mut r = registry().lock().expect("request registry lock");
    r.capacity = capacity.max(1);
    while r.completed.len() > r.capacity {
        r.completed.pop_front();
    }
}

/// Open a record for a newly accepted request and return its id.
/// `None` when recording is disabled (callers thread the `Option`
/// through; every other entry point ignores unknown ids, so the
/// disabled path stays branch-free at the call sites).
pub fn begin(route: &str) -> Option<String> {
    if !enabled() {
        return None;
    }
    let id = format!("r-{:08}", NEXT_ID.fetch_add(1, Ordering::Relaxed));
    crate::ring::event("request.begin", format!("{id} {route}"));
    let mut r = registry().lock().expect("request registry lock");
    r.inflight.push(RequestRecord {
        id: id.clone(),
        route: route.to_string(),
        outcome: String::new(),
        total_us: 0,
        phases: Vec::new(),
        meta: Vec::new(),
    });
    Some(id)
}

/// Append a phase measurement to an in-flight request. Callable from
/// any thread; a no-op for unknown or already-finished ids.
pub fn phase(id: &str, name: &'static str, us: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("request registry lock");
    if let Some(rec) = r.inflight.iter_mut().find(|rec| rec.id == id) {
        rec.phases.push((name, us));
    }
}

/// Attach a metadata field to an in-flight request. A no-op for
/// unknown ids.
pub fn annotate(id: &str, key: &'static str, value: Json) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("request registry lock");
    if let Some(rec) = r.inflight.iter_mut().find(|rec| rec.id == id) {
        rec.meta.push((key, value));
    }
}

/// Seal a request with its outcome and total duration, moving it from
/// the in-flight set to the completed history. Returns the frozen
/// record (the access log consumes it); `None` for unknown ids.
pub fn finish(id: &str, outcome: &str, total_us: u64) -> Option<RequestRecord> {
    if !enabled() {
        return None;
    }
    let mut r = registry().lock().expect("request registry lock");
    let idx = r.inflight.iter().position(|rec| rec.id == id)?;
    let mut rec = r.inflight.remove(idx);
    rec.outcome = outcome.to_string();
    rec.total_us = total_us;
    if r.completed.len() >= r.capacity {
        r.completed.pop_front();
    }
    r.completed.push_back(rec.clone());
    drop(r);
    crate::ring::event(
        "request.finish",
        format!("{} {} {}", rec.id, rec.route, rec.outcome),
    );
    Some(rec)
}

/// Snapshot of the in-flight set, oldest first.
pub fn inflight() -> Vec<RequestRecord> {
    registry()
        .lock()
        .expect("request registry lock")
        .inflight
        .clone()
}

/// Snapshot of the completed history, oldest first.
pub fn completed() -> Vec<RequestRecord> {
    registry()
        .lock()
        .expect("request registry lock")
        .completed
        .iter()
        .cloned()
        .collect()
}

/// Drop all records and restart the id counter (capacity and enable
/// flag are preserved). For tests and the serve determinism harness.
pub fn reset() {
    let mut r = registry().lock().expect("request registry lock");
    r.inflight.clear();
    r.completed.clear();
    drop(r);
    NEXT_ID.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the registry and id counter are process-global, so
    // parallel test functions would interleave.
    #[test]
    fn request_lifecycle_ids_phases_history() {
        set_enabled(false);
        reset();
        assert_eq!(begin("POST /run"), None, "disabled: no record opened");

        set_enabled(true);
        let a = begin("POST /run").unwrap();
        let b = begin("GET /healthz").unwrap();
        assert_eq!(a, "r-00000000");
        assert_eq!(b, "r-00000001");
        assert_eq!(inflight().len(), 2);

        phase(&a, "parse", 10);
        phase(&a, "sim", 500);
        annotate(&a, "cache_key", Json::from("deadbeef"));
        phase("r-99999999", "parse", 1); // unknown id: ignored

        let rec = finish(&a, "miss", 777).expect("finish returns the record");
        assert_eq!(rec.outcome, "miss");
        assert_eq!(rec.total_us, 777);
        assert_eq!(rec.phases, vec![("parse", 10), ("sim", 500)]);
        assert_eq!(inflight().len(), 1);
        assert_eq!(completed().len(), 1);
        assert!(finish(&a, "miss", 1).is_none(), "double finish is a no-op");

        // JSON shape: fixed keys plus flattened meta, phases in order.
        let doc = rec.to_json();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("r-00000000"));
        assert_eq!(doc.get("cache_key").and_then(Json::as_str), Some("deadbeef"));
        let phases = doc.get("phases").and_then(Json::as_arr).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("name").and_then(Json::as_str), Some("parse"));

        // History is a ring: capacity bounds it, oldest evicted first.
        set_capacity(2);
        finish(&b, "ok", 5);
        let c = begin("POST /run").unwrap();
        finish(&c, "hit", 3);
        let done = completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, "r-00000001");
        assert_eq!(done[1].id, "r-00000002");

        // Reset restarts ids for determinism harnesses.
        reset();
        let again = begin("POST /run").unwrap();
        assert_eq!(again, "r-00000000");
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
        reset();
    }
}
