//! Property tests for the ISA layer.

use ampsched_isa::ops::{ALL_OP_CLASSES, NUM_OP_CLASSES};
use ampsched_isa::{ArchReg, InstMix, MixCounts, OpClass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arch_reg_flat_index_is_a_bijection(idx in 0usize..64) {
        let r = ArchReg::from_flat_index(idx);
        prop_assert_eq!(r.flat_index(), idx);
        // Int and Fp never alias.
        match r {
            ArchReg::Int(n) => prop_assert!(n < 32 && idx < 32),
            ArchReg::Fp(n) => prop_assert!(n < 32 && idx >= 32),
        }
    }

    #[test]
    fn mix_cdf_sampling_covers_only_positive_classes(
        weights in proptest::collection::vec(0.0f64..1.0, NUM_OP_CLASSES),
        u in 0.0f64..1.0,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let pairs: Vec<(OpClass, f64)> = ALL_OP_CLASSES
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        let mix = InstMix::from_weights(&pairs);
        let cdf = mix.cdf();
        // Inverse-CDF sampling like the generator does.
        let mut class = OpClass::Branch;
        for (i, &c) in cdf.iter().enumerate() {
            if u <= c {
                class = ALL_OP_CLASSES[i];
                break;
            }
        }
        // A sampled class must have positive probability (up to fp
        // rounding at bin edges).
        prop_assert!(
            mix.probability(class) > 0.0 || u > cdf[NUM_OP_CLASSES - 1] - 1e-12,
            "sampled {class} with zero probability"
        );
    }

    #[test]
    fn mix_counts_merge_is_commutative_and_total_preserving(
        a in proptest::collection::vec(0u64..100, NUM_OP_CLASSES),
        b in proptest::collection::vec(0u64..100, NUM_OP_CLASSES),
    ) {
        let fill = |v: &[u64]| {
            let mut m = MixCounts::new();
            for (i, &n) in v.iter().enumerate() {
                for _ in 0..n {
                    m.record(ALL_OP_CLASSES[i]);
                }
            }
            m
        };
        let (ma, mb) = (fill(&a), fill(&b));
        let mut ab = ma;
        ab.merge(&mb);
        let mut ba = mb;
        ba.merge(&ma);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.total(), ma.total() + mb.total());
        // since() inverts merge.
        prop_assert_eq!(ab.since(&mb), ma);
    }

    #[test]
    fn lerp_probabilities_are_convex_combinations(t in 0.0f64..1.0) {
        let a = InstMix::from_weights(&[(OpClass::IntAlu, 1.0)]);
        let b = InstMix::from_weights(&[(OpClass::FpAlu, 1.0)]);
        let m = a.lerp(&b, t);
        prop_assert!((m.probability(OpClass::IntAlu) - (1.0 - t)).abs() < 1e-12);
        prop_assert!((m.probability(OpClass::FpAlu) - t).abs() < 1e-12);
    }
}
