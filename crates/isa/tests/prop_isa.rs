//! Property tests for the ISA layer, on the in-tree `util::check`
//! harness with a fixed seed (same seed → same cases → same failures).

use ampsched_isa::ops::{ALL_OP_CLASSES, NUM_OP_CLASSES};
use ampsched_isa::{ArchReg, InstMix, MixCounts, OpClass};
use ampsched_util::check::{Checker, Source};
use ampsched_util::{prop_assert, prop_assert_eq, prop_assume};

const SEED: u64 = 0x15a_0001;

fn checker() -> Checker {
    Checker::new(SEED).cases(128).suite("isa")
}

#[test]
fn arch_reg_flat_index_is_a_bijection() {
    checker().run(
        "arch_reg_flat_index_is_a_bijection",
        |s: &mut Source| s.usize_in(0, 64),
        |&idx| {
            let r = ArchReg::from_flat_index(idx);
            prop_assert_eq!(r.flat_index(), idx);
            // Int and Fp never alias.
            match r {
                ArchReg::Int(n) => prop_assert!(n < 32 && idx < 32),
                ArchReg::Fp(n) => prop_assert!(n < 32 && idx >= 32),
            }
            Ok(())
        },
    );
}

#[test]
fn mix_cdf_sampling_covers_only_positive_classes() {
    checker().run(
        "mix_cdf_sampling_covers_only_positive_classes",
        |s: &mut Source| {
            let weights = s.vec_with(NUM_OP_CLASSES, NUM_OP_CLASSES, |s| s.f64_in(0.0, 1.0));
            let u = s.f64_unit();
            (weights, u)
        },
        |(weights, u)| {
            prop_assume!(weights.iter().sum::<f64>() > 1e-9);
            let pairs: Vec<(OpClass, f64)> = ALL_OP_CLASSES
                .iter()
                .copied()
                .zip(weights.iter().copied())
                .collect();
            let mix = InstMix::from_weights(&pairs);
            let cdf = mix.cdf();
            // Inverse-CDF sampling like the generator does.
            let mut class = OpClass::Branch;
            for (i, &c) in cdf.iter().enumerate() {
                if *u <= c {
                    class = ALL_OP_CLASSES[i];
                    break;
                }
            }
            // A sampled class must have positive probability (up to fp
            // rounding at bin edges).
            prop_assert!(
                mix.probability(class) > 0.0 || *u > cdf[NUM_OP_CLASSES - 1] - 1e-12,
                "sampled {class} with zero probability"
            );
            Ok(())
        },
    );
}

#[test]
fn mix_counts_merge_is_commutative_and_total_preserving() {
    checker().run(
        "mix_counts_merge_is_commutative_and_total_preserving",
        |s: &mut Source| {
            let a = s.vec_with(NUM_OP_CLASSES, NUM_OP_CLASSES, |s| s.u64_in(0, 100));
            let b = s.vec_with(NUM_OP_CLASSES, NUM_OP_CLASSES, |s| s.u64_in(0, 100));
            (a, b)
        },
        |(a, b)| {
            let fill = |v: &[u64]| {
                let mut m = MixCounts::new();
                for (i, &n) in v.iter().enumerate() {
                    for _ in 0..n {
                        m.record(ALL_OP_CLASSES[i]);
                    }
                }
                m
            };
            let (ma, mb) = (fill(a), fill(b));
            let mut ab = ma;
            ab.merge(&mb);
            let mut ba = mb;
            ba.merge(&ma);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(ab.total(), ma.total() + mb.total());
            // since() inverts merge.
            prop_assert_eq!(ab.since(&mb), ma);
            Ok(())
        },
    );
}

#[test]
fn lerp_probabilities_are_convex_combinations() {
    checker().run(
        "lerp_probabilities_are_convex_combinations",
        |s: &mut Source| s.f64_unit(),
        |&t| {
            let a = InstMix::from_weights(&[(OpClass::IntAlu, 1.0)]);
            let b = InstMix::from_weights(&[(OpClass::FpAlu, 1.0)]);
            let m = a.lerp(&b, t);
            prop_assert!((m.probability(OpClass::IntAlu) - (1.0 - t)).abs() < 1e-12);
            prop_assert!((m.probability(OpClass::FpAlu) - t).abs() < 1e-12);
            Ok(())
        },
    );
}
