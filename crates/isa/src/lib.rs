//! # ampsched-isa
//!
//! Instruction-set abstractions shared by the workload generators
//! (`ampsched-trace`) and the out-of-order core timing model
//! (`ampsched-cpu`).
//!
//! The simulator is *trace driven*: workloads are streams of [`MicroOp`]
//! records that carry everything the timing model needs — the operation
//! class, architectural source/destination registers, the effective address
//! of memory operations, and the resolved outcome of branches. No values are
//! computed; only timing is modeled. This is the classic trace-driven
//! simulation style used by SESC-era scheduling studies and is sufficient
//! for the paper's experiments, which only observe committed-instruction
//! composition, IPC, and stall behaviour.

pub mod inst;
pub mod mix;
pub mod ops;
pub mod regs;

pub use inst::MicroOp;
pub use mix::{InstMix, MixCounts};
pub use ops::{ExecDomain, OpClass};
pub use regs::{ArchReg, NUM_ARCH_FP_REGS, NUM_ARCH_INT_REGS};
