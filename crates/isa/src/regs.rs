//! Architectural register model.
//!
//! The trace generator assigns architectural registers to weave realistic
//! data-dependency chains; the core model renames them onto the per-core
//! physical register files (INTREG / FPREG in Table I of the paper).

/// Number of architectural integer registers (MIPS-like, as in SESC).
pub const NUM_ARCH_INT_REGS: u8 = 32;
/// Number of architectural floating-point registers.
pub const NUM_ARCH_FP_REGS: u8 = 32;

/// An architectural register operand.
///
/// Register 0 of the integer file is the hard-wired zero register and is
/// never renamed (reads of it are always ready; writes are dropped), as on
/// MIPS. The FP file has no zero register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchReg {
    /// Integer register `$0..$31`.
    Int(u8),
    /// Floating-point register `$f0..$f31`.
    Fp(u8),
}

impl ArchReg {
    /// True for the hard-wired integer zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, ArchReg::Int(0))
    }

    /// True if this register lives in the FP register file.
    #[inline]
    pub const fn is_fp(self) -> bool {
        matches!(self, ArchReg::Fp(_))
    }

    /// Flat index over the combined (int, fp) architectural space:
    /// integer regs map to `0..32`, FP regs to `32..64`.
    #[inline]
    pub const fn flat_index(self) -> usize {
        match self {
            ArchReg::Int(r) => r as usize,
            ArchReg::Fp(r) => NUM_ARCH_INT_REGS as usize + r as usize,
        }
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    #[inline]
    pub fn from_flat_index(idx: usize) -> Self {
        let ni = NUM_ARCH_INT_REGS as usize;
        if idx < ni {
            ArchReg::Int(idx as u8)
        } else if idx < ni + NUM_ARCH_FP_REGS as usize {
            ArchReg::Fp((idx - ni) as u8)
        } else {
            panic!("architectural register flat index {idx} out of range");
        }
    }
}

/// Total architectural register count across both files.
pub const NUM_ARCH_REGS: usize = NUM_ARCH_INT_REGS as usize + NUM_ARCH_FP_REGS as usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrips() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::from_flat_index(i).flat_index(), i);
        }
    }

    #[test]
    fn zero_register_detection() {
        assert!(ArchReg::Int(0).is_zero());
        assert!(!ArchReg::Int(1).is_zero());
        assert!(!ArchReg::Fp(0).is_zero());
    }

    #[test]
    fn fp_classification() {
        assert!(ArchReg::Fp(3).is_fp());
        assert!(!ArchReg::Int(3).is_fp());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_flat_index(NUM_ARCH_REGS);
    }
}
