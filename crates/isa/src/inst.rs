//! The trace record consumed by the timing model.

use crate::ops::OpClass;
use crate::regs::ArchReg;

/// One micro-op of a trace.
///
/// A `MicroOp` is pre-decoded and pre-resolved: the effective address of a
/// memory operation and the direction/predictability of a branch are carried
/// in the record. The core model never executes wrong-path instructions;
/// mispredictions are modeled as fetch-redirect stalls (the standard
/// trace-driven approximation, also used by the paper's SESC setup for its
/// scheduling statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Instruction address (drives the L1I model). Filled in by the trace
    /// generator; the constructors default it to 0.
    pub pc: u64,
    /// Operation class (selects issue queue, functional unit, latency).
    pub class: OpClass,
    /// First source register, if any.
    pub src1: Option<ArchReg>,
    /// Second source register, if any.
    pub src2: Option<ArchReg>,
    /// Destination register, if any. Stores and branches have none.
    pub dst: Option<ArchReg>,
    /// Effective byte address for loads/stores; 0 otherwise.
    pub addr: u64,
    /// Access size in bytes for loads/stores; 0 otherwise.
    pub size: u8,
    /// For branches: whether the direction/target was predicted correctly
    /// by the modeled predictor. Pre-resolved by the trace generator from
    /// the workload's branch-predictability parameter.
    pub predicted_correctly: bool,
}

impl MicroOp {
    /// A non-memory, non-branch op with up to two sources and one dest.
    #[inline]
    pub fn arith(
        class: OpClass,
        src1: Option<ArchReg>,
        src2: Option<ArchReg>,
        dst: Option<ArchReg>,
    ) -> Self {
        debug_assert!(!class.is_mem() && !class.is_branch());
        MicroOp {
            pc: 0,
            class,
            src1,
            src2,
            dst,
            addr: 0,
            size: 0,
            predicted_correctly: true,
        }
    }

    /// A load from `addr` into `dst`.
    #[inline]
    pub fn load(addr: u64, size: u8, base: Option<ArchReg>, dst: ArchReg) -> Self {
        MicroOp {
            pc: 0,
            class: OpClass::Load,
            src1: base,
            src2: None,
            dst: Some(dst),
            addr,
            size,
            predicted_correctly: true,
        }
    }

    /// A store of `data` to `addr` (address base register optional).
    #[inline]
    pub fn store(addr: u64, size: u8, base: Option<ArchReg>, data: ArchReg) -> Self {
        MicroOp {
            pc: 0,
            class: OpClass::Store,
            src1: base,
            src2: Some(data),
            dst: None,
            addr,
            size,
            predicted_correctly: true,
        }
    }

    /// A branch whose predictor outcome is pre-resolved.
    #[inline]
    pub fn branch(cond: Option<ArchReg>, predicted_correctly: bool) -> Self {
        MicroOp {
            pc: 0,
            class: OpClass::Branch,
            src1: cond,
            src2: None,
            dst: None,
            addr: 0,
            size: 0,
            predicted_correctly,
        }
    }

    /// Iterator over the (up to two) source registers, skipping the
    /// hard-wired zero register which is always ready.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1
            .into_iter()
            .chain(self.src2)
            .filter(|r| !r.is_zero())
    }

    /// Destination register unless it is the hard-wired zero register.
    #[inline]
    pub fn effective_dst(&self) -> Option<ArchReg> {
        self.dst.filter(|r| !r.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_classes() {
        let l = MicroOp::load(64, 8, Some(ArchReg::Int(4)), ArchReg::Int(5));
        assert_eq!(l.class, OpClass::Load);
        assert_eq!(l.addr, 64);
        let s = MicroOp::store(128, 4, Some(ArchReg::Int(4)), ArchReg::Int(6));
        assert_eq!(s.class, OpClass::Store);
        assert!(s.dst.is_none());
        let b = MicroOp::branch(Some(ArchReg::Int(2)), false);
        assert!(b.class.is_branch());
        assert!(!b.predicted_correctly);
    }

    #[test]
    fn zero_register_is_filtered_from_sources_and_dst() {
        let op = MicroOp::arith(
            OpClass::IntAlu,
            Some(ArchReg::Int(0)),
            Some(ArchReg::Int(7)),
            Some(ArchReg::Int(0)),
        );
        let srcs: Vec<_> = op.sources().collect();
        assert_eq!(srcs, vec![ArchReg::Int(7)]);
        assert_eq!(op.effective_dst(), None);
    }

    #[test]
    fn fp_zero_is_a_real_register() {
        let op = MicroOp::arith(
            OpClass::FpAlu,
            Some(ArchReg::Fp(0)),
            None,
            Some(ArchReg::Fp(0)),
        );
        assert_eq!(op.sources().count(), 1);
        assert_eq!(op.effective_dst(), Some(ArchReg::Fp(0)));
    }
}
