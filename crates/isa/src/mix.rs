//! Instruction-mix descriptors and counters.
//!
//! [`InstMix`] specifies the *intended* composition of a workload phase
//! (probabilities per [`OpClass`]); [`MixCounts`] accumulates the *observed*
//! composition of committed instructions. The latter is the information the
//! paper's hardware performance counters expose to the scheduler
//! (%INT / %FP of committed instructions per window).

use crate::ops::{OpClass, ALL_OP_CLASSES, NUM_OP_CLASSES};

/// Probability distribution over op classes for a workload phase.
///
/// Stored as weights; [`InstMix::normalized`] rescales them to sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMix {
    weights: [f64; NUM_OP_CLASSES],
}

impl InstMix {
    /// Build a mix from `(class, weight)` pairs; unlisted classes get 0.
    ///
    /// # Panics
    /// Panics if all weights are zero or any weight is negative/non-finite.
    pub fn from_weights(pairs: &[(OpClass, f64)]) -> Self {
        let mut weights = [0.0; NUM_OP_CLASSES];
        for &(c, w) in pairs {
            assert!(w.is_finite() && w >= 0.0, "weight for {c} must be >= 0");
            weights[c.index()] += w;
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "instruction mix must have positive total weight");
        InstMix { weights }
    }

    /// Weight of one class (un-normalized).
    #[inline]
    pub fn weight(&self, class: OpClass) -> f64 {
        self.weights[class.index()]
    }

    /// The normalized probability of one class.
    #[inline]
    pub fn probability(&self, class: OpClass) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[class.index()] / total
    }

    /// Normalized probabilities for all classes in [`ALL_OP_CLASSES`] order.
    pub fn normalized(&self) -> [f64; NUM_OP_CLASSES] {
        let total: f64 = self.weights.iter().sum();
        let mut out = self.weights;
        for w in &mut out {
            *w /= total;
        }
        out
    }

    /// Cumulative distribution in class order, for inverse-CDF sampling.
    /// The final entry is exactly 1.0.
    pub fn cdf(&self) -> [f64; NUM_OP_CLASSES] {
        let probs = self.normalized();
        let mut cdf = [0.0; NUM_OP_CLASSES];
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            cdf[i] = acc;
        }
        cdf[NUM_OP_CLASSES - 1] = 1.0;
        cdf
    }

    /// Fraction of integer-arithmetic instructions (the paper's %INT).
    pub fn int_fraction(&self) -> f64 {
        ALL_OP_CLASSES
            .iter()
            .filter(|c| c.is_int_arith())
            .map(|c| self.probability(*c))
            .sum()
    }

    /// Fraction of FP-arithmetic instructions (the paper's %FP).
    pub fn fp_fraction(&self) -> f64 {
        ALL_OP_CLASSES
            .iter()
            .filter(|c| c.is_fp())
            .map(|c| self.probability(*c))
            .sum()
    }

    /// Linear interpolation between two mixes (`t` in `[0,1]`), used to
    /// smooth phase transitions in the workload models.
    pub fn lerp(&self, other: &InstMix, t: f64) -> InstMix {
        let t = t.clamp(0.0, 1.0);
        let a = self.normalized();
        let b = other.normalized();
        let mut weights = [0.0; NUM_OP_CLASSES];
        for i in 0..NUM_OP_CLASSES {
            weights[i] = a[i] * (1.0 - t) + b[i] * t;
        }
        InstMix { weights }
    }
}

/// Committed-instruction counts per op class — the model of the paper's
/// low-cost hardware counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixCounts {
    counts: [u64; NUM_OP_CLASSES],
}

impl MixCounts {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one committed instruction.
    #[inline]
    pub fn record(&mut self, class: OpClass) {
        self.counts[class.index()] += 1;
    }

    /// Count for one class.
    #[inline]
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total committed instructions.
    #[inline]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage (0–100) of integer-arithmetic instructions: the paper's
    /// %INT counter. Returns 0 for an empty window.
    pub fn int_pct(&self) -> f64 {
        self.domain_pct(|c| c.is_int_arith())
    }

    /// Percentage (0–100) of FP-arithmetic instructions: the paper's %FP.
    pub fn fp_pct(&self) -> f64 {
        self.domain_pct(|c| c.is_fp())
    }

    /// Percentage (0–100) of loads+stores.
    pub fn mem_pct(&self) -> f64 {
        self.domain_pct(|c| c.is_mem())
    }

    /// Percentage (0–100) of branches.
    pub fn branch_pct(&self) -> f64 {
        self.domain_pct(|c| c.is_branch())
    }

    fn domain_pct(&self, pred: impl Fn(OpClass) -> bool) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n: u64 = ALL_OP_CLASSES
            .iter()
            .filter(|c| pred(**c))
            .map(|c| self.count(*c))
            .sum();
        100.0 * n as f64 / total as f64
    }

    /// Reset all counters to zero (start of a new monitoring window).
    pub fn reset(&mut self) {
        self.counts = [0; NUM_OP_CLASSES];
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &MixCounts) {
        for i in 0..NUM_OP_CLASSES {
            self.counts[i] += other.counts[i];
        }
    }

    /// Counts accumulated since an `earlier` snapshot of the same counter
    /// set (window delta).
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &MixCounts) -> MixCounts {
        let mut out = MixCounts::new();
        for i in 0..NUM_OP_CLASSES {
            debug_assert!(self.counts[i] >= earlier.counts[i], "snapshot order");
            out.counts[i] = self.counts[i] - earlier.counts[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mix() -> InstMix {
        InstMix::from_weights(&[
            (OpClass::IntAlu, 0.4),
            (OpClass::FpAlu, 0.2),
            (OpClass::FpMul, 0.1),
            (OpClass::Load, 0.15),
            (OpClass::Store, 0.05),
            (OpClass::Branch, 0.1),
        ])
    }

    #[test]
    fn normalized_sums_to_one() {
        let m = sample_mix();
        let sum: f64 = m.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_ends_at_one_and_is_monotone() {
        let cdf = sample_mix().cdf();
        assert_eq!(cdf[NUM_OP_CLASSES - 1], 1.0);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn fractions_match_definition() {
        let m = sample_mix();
        assert!((m.int_fraction() - 0.4).abs() < 1e-12);
        assert!((m.fp_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = sample_mix();
        let b = InstMix::from_weights(&[(OpClass::IntAlu, 1.0)]);
        let at0 = a.lerp(&b, 0.0);
        let at1 = a.lerp(&b, 1.0);
        for c in ALL_OP_CLASSES {
            assert!((at0.probability(c) - a.probability(c)).abs() < 1e-12);
            assert!((at1.probability(c) - b.probability(c)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        let _ = InstMix::from_weights(&[]);
    }

    #[test]
    fn counts_percentages() {
        let mut c = MixCounts::new();
        for _ in 0..55 {
            c.record(OpClass::IntAlu);
        }
        for _ in 0..20 {
            c.record(OpClass::FpMul);
        }
        for _ in 0..25 {
            c.record(OpClass::Load);
        }
        assert_eq!(c.total(), 100);
        assert!((c.int_pct() - 55.0).abs() < 1e-12);
        assert!((c.fp_pct() - 20.0).abs() < 1e-12);
        assert!((c.mem_pct() - 25.0).abs() < 1e-12);
        assert_eq!(c.branch_pct(), 0.0);
    }

    #[test]
    fn empty_counts_are_zero_pct() {
        let c = MixCounts::new();
        assert_eq!(c.int_pct(), 0.0);
        assert_eq!(c.fp_pct(), 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = MixCounts::new();
        a.record(OpClass::IntAlu);
        let mut b = MixCounts::new();
        b.record(OpClass::FpAlu);
        b.record(OpClass::IntAlu);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(OpClass::IntAlu), 2);
        a.reset();
        assert_eq!(a.total(), 0);
    }
}
