//! Micro-operation classes and execution domains.
//!
//! The dual-core AMP of the paper distinguishes instructions by the
//! *flavor* of the datapath that executes them: integer vs floating-point,
//! plus memory and control operations. [`OpClass`] is the complete taxonomy
//! used by both the workload models and the core timing model;
//! [`ExecDomain`] is the coarser grouping the schedulers' hardware counters
//! observe (the paper's %INT / %FP instruction percentages).

use std::fmt;

/// Operation class of a single micro-op.
///
/// Latency and pipelining of each class on each core type are configured by
/// `ampsched-cpu`'s `CoreConfig` following Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer add/sub/logic/shift/compare.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (and modulo).
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt.
    FpDiv,
    /// Memory load. Uses the integer datapath for address generation.
    Load,
    /// Memory store. Uses the integer datapath for address generation.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
}

/// All classes, in a fixed order usable for dense per-class arrays.
pub const ALL_OP_CLASSES: [OpClass; 9] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAlu,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
];

/// Number of [`OpClass`] variants (length of [`ALL_OP_CLASSES`]).
pub const NUM_OP_CLASSES: usize = ALL_OP_CLASSES.len();

impl OpClass {
    /// Dense index of this class, matching [`ALL_OP_CLASSES`] order.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The execution domain whose issue queue / functional units serve this
    /// class.
    ///
    /// Loads, stores, and branches flow through the integer datapath
    /// (address generation / condition evaluation), matching the paper's
    /// counter definition in which "%INT" counts non-FP instructions'
    /// integer work while %INT + %FP + %mem + %branch partition the stream.
    #[inline]
    pub const fn domain(self) -> ExecDomain {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => ExecDomain::Int,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => ExecDomain::Fp,
            OpClass::Load | OpClass::Store => ExecDomain::Mem,
            OpClass::Branch => ExecDomain::Ctrl,
        }
    }

    /// True if this op reads or writes memory.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True if this op is a control transfer.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// True if this op executes on floating-point functional units.
    #[inline]
    pub const fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// True if this op executes on integer ALU/MUL/DIV units
    /// (arithmetic only; memory and branches are counted separately).
    #[inline]
    pub const fn is_int_arith(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv)
    }

    /// Whether the destination register (if any) lives in the FP register
    /// file.
    #[inline]
    pub const fn writes_fp_reg(self) -> bool {
        // FP arithmetic writes FP registers; FP loads are modeled as
        // integer-addressed but may target FP registers — the trace decides
        // per-instruction, this is only the default for arithmetic.
        self.is_fp()
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpMul => "fp_mul",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Coarse execution domain, as seen by the paper's hardware counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecDomain {
    /// Integer arithmetic (ALU/MUL/DIV).
    Int,
    /// Floating-point arithmetic (ALU/MUL/DIV).
    Fp,
    /// Loads and stores.
    Mem,
    /// Branches and jumps.
    Ctrl,
}

impl ExecDomain {
    /// Dense index (Int=0, Fp=1, Mem=2, Ctrl=3).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ExecDomain::Int => 0,
            ExecDomain::Fp => 1,
            ExecDomain::Mem => 2,
            ExecDomain::Ctrl => 3,
        }
    }
}

/// Number of [`ExecDomain`] variants.
pub const NUM_DOMAINS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_order() {
        for (i, c) in ALL_OP_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i, "class {c} should have index {i}");
        }
    }

    #[test]
    fn domains_partition_classes() {
        use OpClass::*;
        assert_eq!(IntAlu.domain(), ExecDomain::Int);
        assert_eq!(IntMul.domain(), ExecDomain::Int);
        assert_eq!(IntDiv.domain(), ExecDomain::Int);
        assert_eq!(FpAlu.domain(), ExecDomain::Fp);
        assert_eq!(FpMul.domain(), ExecDomain::Fp);
        assert_eq!(FpDiv.domain(), ExecDomain::Fp);
        assert_eq!(Load.domain(), ExecDomain::Mem);
        assert_eq!(Store.domain(), ExecDomain::Mem);
        assert_eq!(Branch.domain(), ExecDomain::Ctrl);
    }

    #[test]
    fn predicates_are_consistent_with_domains() {
        for c in ALL_OP_CLASSES {
            assert_eq!(c.is_fp(), c.domain() == ExecDomain::Fp);
            assert_eq!(c.is_int_arith(), c.domain() == ExecDomain::Int);
            assert_eq!(c.is_mem(), c.domain() == ExecDomain::Mem);
            assert_eq!(c.is_branch(), c.domain() == ExecDomain::Ctrl);
        }
    }

    #[test]
    fn domain_indices_dense() {
        let idx: Vec<usize> = [
            ExecDomain::Int,
            ExecDomain::Fp,
            ExecDomain::Mem,
            ExecDomain::Ctrl,
        ]
        .iter()
        .map(|d| d.index())
        .collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
