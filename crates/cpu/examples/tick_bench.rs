//! Microbenchmark for the core kernels: ns/cycle of `tick` vs
//! `reference_tick` on synthetic op streams, isolated from trace
//! provisioning. Run with:
//!
//! ```text
//! cargo run --release -p ampsched-cpu --example tick_bench [CYCLES]
//! ```

use ampsched_cpu::{Core, CoreConfig};
use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{MemConfig, MemSystem};
use ampsched_trace::{suite, ReplaySource, Workload};
use std::time::Instant;

struct VecWorkload {
    ops: Vec<MicroOp>,
    i: usize,
}

impl Workload for VecWorkload {
    fn name(&self) -> &str {
        "vec"
    }
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }
    fn current_phase(&self) -> usize {
        0
    }
}

fn stream(kind: &str) -> Vec<MicroOp> {
    match kind {
        // Independent int ALU ops: dispatch-bound, ISQ mostly empty.
        "int" => (0..32)
            .map(|i| {
                let mut op = MicroOp::arith(
                    OpClass::IntAlu,
                    None,
                    None,
                    Some(ArchReg::Int(1 + (i % 16) as u8)),
                );
                op.pc = 4 * i as u64;
                op
            })
            .collect(),
        // Long FP dependency chains: queues sit full, wakeup scans long.
        "fpchain" => (0..8)
            .flat_map(|c| {
                (0..4).map(move |i| {
                    let r = ArchReg::Fp(1 + c as u8);
                    let mut op = MicroOp::arith(OpClass::FpMul, Some(r), None, Some(r));
                    op.pc = 4 * (c * 4 + i) as u64;
                    op
                })
            })
            .collect(),
        // Load/store mix with a shared word: LSQ scans + forwarding.
        "mem" => (0..16)
            .flat_map(|i| {
                let a = 0x1000 + 8 * (i % 4) as u64;
                [
                    MicroOp::store(a, 8, None, ArchReg::Int(1 + (i % 8) as u8)),
                    MicroOp::load(a, 8, None, ArchReg::Int(9 + (i % 8) as u8)),
                ]
            })
            .collect(),
        _ => unreachable!(),
    }
}

fn workload(kind: &str) -> Box<dyn Workload> {
    // `suite:<name>` streams the real benchmark through the arena replay
    // path — decode cost included, exactly what a fig7 run pays per op.
    // `vec:<name>` pre-materializes the same stream into a flat buffer,
    // isolating kernel+memory cost from decode.
    if let Some(name) = kind.strip_prefix("suite:") {
        let spec = suite::by_name(name).expect("benchmark in suite");
        Box::new(ReplaySource::for_thread(spec, 42, 0))
    } else if let Some(name) = kind.strip_prefix("vec:") {
        let spec = suite::by_name(name).expect("benchmark in suite");
        let mut src = ReplaySource::for_thread(spec, 42, 0);
        let ops = (0..4_000_000).map(|_| src.next_op()).collect();
        Box::new(VecWorkload { ops, i: 0 })
    } else {
        Box::new(VecWorkload {
            ops: stream(kind),
            i: 0,
        })
    }
}

fn run(fast: bool, kind: &str, cycles: u64) -> (f64, u64) {
    let mut core = Core::new(CoreConfig::int_core(), 0);
    let mut mem = MemSystem::new(MemConfig::default(), 1);
    let mut w = workload(kind);
    let t0 = Instant::now();
    if fast {
        for now in 0..cycles {
            core.tick(now, &mut *w, &mut mem);
        }
    } else {
        for now in 0..cycles {
            core.reference_tick(now, &mut *w, &mut mem);
        }
    }
    let ns = t0.elapsed().as_nanos() as f64 / cycles as f64;
    (ns, core.stats.committed.total())
}

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    // Floor: draining the workload through the dyn call alone.
    let mut w = VecWorkload {
        ops: stream("int"),
        i: 0,
    };
    let t0 = Instant::now();
    let mut sink = 0u64;
    for _ in 0..cycles {
        sink = sink.wrapping_add(w.next_op().pc);
    }
    std::hint::black_box(sink);
    println!(
        "next_op drain: {:.1} ns/op\n",
        t0.elapsed().as_nanos() as f64 / cycles as f64
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8}",
        "stream", "fast ns/cyc", "ref ns/cyc", "ratio", "ipc"
    );
    // Noisy host: take the best of `reps` runs for each configuration.
    let kinds: Vec<String> = std::env::args().skip(3).collect();
    let default_kinds = ["int", "fpchain", "mem", "suite:gcc", "suite:equake", "suite:mcf"];
    let kinds: Vec<&str> = if kinds.is_empty() {
        default_kinds.to_vec()
    } else {
        kinds.iter().map(|s| s.as_str()).collect()
    };
    for kind in kinds {
        let mut f = f64::MAX;
        let mut r = f64::MAX;
        let mut fc = 0;
        for _ in 0..reps {
            let (fi, c) = run(true, kind, cycles);
            f = f.min(fi);
            fc = c;
            let (ri, rc) = run(false, kind, cycles);
            r = r.min(ri);
            assert_eq!(c, rc, "kernels diverged on {kind}");
        }
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>7.2}x {:>8.2}",
            kind,
            f,
            r,
            r / f,
            fc as f64 / cycles as f64
        );
    }
}
