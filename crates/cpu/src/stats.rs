//! Architectural statistics: what the paper's hardware performance
//! counters expose, plus diagnostics.

use ampsched_isa::MixCounts;

/// Cumulative per-core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles simulated on this core.
    pub cycles: u64,
    /// Committed instructions by class.
    pub committed: MixCounts,
    /// Branches committed.
    pub branches: u64,
    /// Mispredicted branches committed.
    pub mispredicts: u64,
    /// Cycles the frontend was stalled on an L1I miss.
    pub icache_stall_cycles: u64,
    /// Cycles the frontend was stalled on a branch redirect.
    pub redirect_stall_cycles: u64,
    /// Cycles dispatch was blocked by a full ROB.
    pub rob_full_stalls: u64,
    /// Cycles dispatch was blocked by a full issue queue.
    pub isq_full_stalls: u64,
    /// Cycles dispatch was blocked by an exhausted rename pool.
    pub rename_stalls: u64,
    /// Cycles dispatch was blocked by a full load/store queue.
    pub lsq_full_stalls: u64,
}

impl CoreStats {
    /// Instructions per cycle so far; 0 when no cycles have elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed.total() as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate in `[0,1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total cycles dispatch was blocked for any structural reason.
    pub fn structural_stalls(&self) -> u64 {
        self.rob_full_stalls + self.isq_full_stalls + self.rename_stalls + self.lsq_full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsched_isa::OpClass;

    #[test]
    fn ipc_and_rates() {
        let mut s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        s.cycles = 100;
        for _ in 0..80 {
            s.committed.record(OpClass::IntAlu);
        }
        s.branches = 20;
        s.mispredicts = 2;
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn structural_stall_sum() {
        let s = CoreStats {
            rob_full_stalls: 1,
            isq_full_stalls: 2,
            rename_stalls: 3,
            lsq_full_stalls: 4,
            ..Default::default()
        };
        assert_eq!(s.structural_stalls(), 10);
    }
}
