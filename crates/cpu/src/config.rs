//! Core configurations: Tables I and II of the paper.

use ampsched_isa::OpClass;

/// Flavor of an asymmetric core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreFlavor {
    /// Strong integer, weak floating-point datapath (the paper's INT core).
    Int,
    /// Strong floating-point, weak integer datapath (the paper's FP core).
    Fp,
}

impl std::fmt::Display for CoreFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoreFlavor::Int => "INT",
            CoreFlavor::Fp => "FP",
        })
    }
}

/// A pool of identical functional units for one op class (Table II cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuSpec {
    /// Number of identical units.
    pub units: u8,
    /// Result latency in cycles.
    pub latency: u8,
    /// Pipelined units accept a new op every cycle; non-pipelined units
    /// are busy for the full latency.
    pub pipelined: bool,
}

impl FuSpec {
    /// Construct, validating non-degeneracy.
    pub const fn new(units: u8, latency: u8, pipelined: bool) -> Self {
        assert!(units >= 1, "FU pool needs at least one unit");
        assert!(latency >= 1, "FU latency must be at least one cycle");
        FuSpec {
            units,
            latency,
            pipelined,
        }
    }

    /// Peak throughput in ops/cycle.
    pub fn peak_throughput(&self) -> f64 {
        if self.pipelined {
            self.units as f64
        } else {
            self.units as f64 / self.latency as f64
        }
    }
}

/// Full static configuration of one core (Tables I + II).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Display name (`"INT"` / `"FP"`).
    pub name: &'static str,
    /// Datapath flavor.
    pub flavor: CoreFlavor,
    /// Frontend width: instructions fetched/renamed/dispatched per cycle.
    pub dispatch_width: u8,
    /// Maximum instructions committed per cycle.
    pub commit_width: u8,
    /// Select width of the integer issue queue (ops/cycle).
    pub issue_width_int: u8,
    /// Select width of the FP issue queue (ops/cycle).
    pub issue_width_fp: u8,
    /// Reorder-buffer entries (Table I: ROB).
    pub rob_size: u16,
    /// Physical integer registers (Table I: INTREG). Must exceed the 32
    /// architectural registers; the excess is the rename pool.
    pub int_regs: u16,
    /// Physical FP registers (Table I: FPREG).
    pub fp_regs: u16,
    /// Integer issue-queue entries (Table I: INTISQ).
    pub int_isq: u16,
    /// FP issue-queue entries (Table I: FPISQ).
    pub fp_isq: u16,
    /// Load-queue entries (Table I: LSQ, load half).
    pub lsq_loads: u16,
    /// Store-queue entries (Table I: LSQ, store half).
    pub lsq_stores: u16,
    /// Functional-unit pools for the six arithmetic classes
    /// (indexed by [`OpClass::index`]; mem/branch entries unused).
    pub fu: [FuSpec; 6],
    /// Cycles of frontend refill after a mispredicted branch resolves.
    pub mispredict_penalty: u8,
    /// Core clock in GHz (2 GHz in the paper).
    pub frequency_ghz: f64,
}

impl CoreConfig {
    /// The paper's INT core: strong pipelined integer datapath, weak
    /// non-pipelined FP units, integer-heavy Table I sizing.
    pub fn int_core() -> Self {
        CoreConfig {
            name: "INT",
            flavor: CoreFlavor::Int,
            dispatch_width: 2,
            commit_width: 4,
            issue_width_int: 2,
            issue_width_fp: 1,
            rob_size: 96,
            int_regs: 96,
            fp_regs: 48,
            int_isq: 32,
            fp_isq: 16,
            lsq_loads: 16,
            lsq_stores: 16,
            fu: [
                FuSpec::new(2, 1, true),   // INT ALU: 2 units, 1 cyc, P
                FuSpec::new(1, 3, true),   // INT MUL: 1 unit, 3 cyc, P
                FuSpec::new(1, 12, true),  // INT DIV: 1 unit, 12 cyc, P
                FuSpec::new(1, 4, false),  // FP ALU: 1 unit, 4 cyc, NP
                FuSpec::new(1, 3, false),  // FP MUL: 1 unit, 3 cyc, NP
                FuSpec::new(1, 12, false), // FP DIV: 1 unit, 12 cyc, NP
            ],
            mispredict_penalty: 8,
            frequency_ghz: 2.0,
        }
    }

    /// The paper's FP core: strong pipelined FP datapath, weak
    /// non-pipelined integer units, FP-heavy Table I sizing.
    pub fn fp_core() -> Self {
        CoreConfig {
            name: "FP",
            flavor: CoreFlavor::Fp,
            dispatch_width: 2,
            commit_width: 4,
            issue_width_int: 1,
            issue_width_fp: 2,
            rob_size: 96,
            int_regs: 48,
            fp_regs: 96,
            int_isq: 16,
            fp_isq: 32,
            lsq_loads: 16,
            lsq_stores: 16,
            fu: [
                FuSpec::new(1, 2, false),  // INT ALU: 1 unit, 2 cyc, NP
                FuSpec::new(1, 3, false),  // INT MUL: 1 unit, 3 cyc, NP
                FuSpec::new(1, 12, false), // INT DIV: 1 unit, 12 cyc, NP
                FuSpec::new(2, 4, true),   // FP ALU: 2 units, 4 cyc, P
                FuSpec::new(1, 4, true),   // FP MUL: 1 unit, 4 cyc, P
                FuSpec::new(1, 12, true),  // FP DIV: 1 unit, 12 cyc, P
            ],
            mispredict_penalty: 8,
            frequency_ghz: 2.0,
        }
    }

    /// The *morphed strong* core of the authors' companion work \[5\]
    /// (discussed in Section III of the paper): the INT core after taking
    /// over the FP core's strong floating-point datapath. Used by the
    /// morphing extension experiments — the paper itself deliberately
    /// studies swap-only scheduling to avoid this hardware.
    pub fn morphed_strong() -> Self {
        let int = Self::int_core();
        let fp = Self::fp_core();
        CoreConfig {
            name: "MORPH+",
            // Strong integer datapath from the INT core...
            fu: [
                int.fu[0], int.fu[1], int.fu[2],
                // ...strong FP datapath taken from the FP core.
                fp.fu[3], fp.fu[4], fp.fu[5],
            ],
            // Register/queue/select resources follow the datapaths.
            int_regs: int.int_regs,
            fp_regs: fp.fp_regs,
            int_isq: int.int_isq,
            fp_isq: fp.fp_isq,
            issue_width_int: int.issue_width_int,
            issue_width_fp: fp.issue_width_fp,
            ..int
        }
    }

    /// The *morphed weak* core: the FP core left with both weak
    /// datapaths after relinquishing its strong FP units.
    pub fn morphed_weak() -> Self {
        let int = Self::int_core();
        let fp = Self::fp_core();
        CoreConfig {
            name: "MORPH-",
            fu: [
                // Weak integer datapath (the FP core's own)...
                fp.fu[0], fp.fu[1], fp.fu[2],
                // ...and the INT core's weak FP datapath.
                int.fu[3], int.fu[4], int.fu[5],
            ],
            int_regs: fp.int_regs,
            fp_regs: int.fp_regs,
            int_isq: fp.int_isq,
            fp_isq: int.fp_isq,
            issue_width_int: fp.issue_width_int,
            issue_width_fp: int.issue_width_fp,
            ..fp
        }
    }

    /// FU spec for an arithmetic class.
    ///
    /// # Panics
    /// Panics when called with a memory or branch class; those are served
    /// by the LSQ/branch logic, not an FU pool.
    #[inline]
    pub fn fu_for(&self, class: OpClass) -> FuSpec {
        debug_assert!(class.index() < 6, "{class} has no FU pool");
        self.fu[class.index()]
    }

    /// Integer rename-pool size (physical regs beyond architectural).
    pub fn int_rename_pool(&self) -> u16 {
        self.int_regs - ampsched_isa::NUM_ARCH_INT_REGS as u16
    }

    /// FP rename-pool size.
    pub fn fp_rename_pool(&self) -> u16 {
        self.fp_regs - ampsched_isa::NUM_ARCH_FP_REGS as u16
    }

    /// Validate all invariants the pipeline relies on.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.dispatch_width >= 1);
        assert!(self.commit_width >= 1);
        assert!(self.rob_size >= self.dispatch_width as u16);
        assert!(
            self.int_regs > ampsched_isa::NUM_ARCH_INT_REGS as u16,
            "{}: INTREG must exceed the architectural register count",
            self.name
        );
        assert!(
            self.fp_regs > ampsched_isa::NUM_ARCH_FP_REGS as u16,
            "{}: FPREG must exceed the architectural register count",
            self.name
        );
        assert!(self.int_isq >= 1 && self.fp_isq >= 1);
        assert!(self.lsq_loads >= 1 && self.lsq_stores >= 1);
        assert!(self.frequency_ghz > 0.0);
    }

    /// Total cycles in one OS scheduling epoch of `ms` milliseconds.
    pub fn cycles_per_ms(&self) -> u64 {
        (self.frequency_ghz * 1e6) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_cores_validate() {
        CoreConfig::int_core().validate();
        CoreConfig::fp_core().validate();
    }

    #[test]
    fn asymmetry_matches_table_ii() {
        let int_c = CoreConfig::int_core();
        let fp_c = CoreConfig::fp_core();
        // INT core out-throughputs FP core on integer ALU ops...
        assert!(
            int_c.fu_for(OpClass::IntAlu).peak_throughput()
                > fp_c.fu_for(OpClass::IntAlu).peak_throughput()
        );
        // ...and vice versa for FP ALU ops.
        assert!(
            fp_c.fu_for(OpClass::FpAlu).peak_throughput()
                > int_c.fu_for(OpClass::FpAlu).peak_throughput()
        );
        // Pipelining asymmetry.
        assert!(int_c.fu_for(OpClass::IntMul).pipelined);
        assert!(!int_c.fu_for(OpClass::FpMul).pipelined);
        assert!(fp_c.fu_for(OpClass::FpMul).pipelined);
        assert!(!fp_c.fu_for(OpClass::IntMul).pipelined);
    }

    #[test]
    fn table_i_sizing_asymmetry() {
        let int_c = CoreConfig::int_core();
        let fp_c = CoreConfig::fp_core();
        assert!(int_c.int_regs > int_c.fp_regs);
        assert!(fp_c.fp_regs > fp_c.int_regs);
        assert!(int_c.int_isq > int_c.fp_isq);
        assert!(fp_c.fp_isq > fp_c.int_isq);
        assert_eq!(int_c.rob_size, fp_c.rob_size);
    }

    #[test]
    fn rename_pools() {
        let fp_c = CoreConfig::fp_core();
        assert_eq!(fp_c.int_rename_pool(), 48 - 32);
        assert_eq!(fp_c.fp_rename_pool(), 96 - 32);
    }

    #[test]
    fn non_pipelined_throughput() {
        let s = FuSpec::new(1, 4, false);
        assert!((s.peak_throughput() - 0.25).abs() < 1e-12);
        let p = FuSpec::new(2, 4, true);
        assert!((p.peak_throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn morphed_cores_combine_the_right_datapaths() {
        let strong = CoreConfig::morphed_strong();
        let weak = CoreConfig::morphed_weak();
        strong.validate();
        weak.validate();
        // Strong core: best-of-both throughput on every class.
        for c in [OpClass::IntAlu, OpClass::FpAlu, OpClass::IntMul, OpClass::FpMul] {
            let best = CoreConfig::int_core()
                .fu_for(c)
                .peak_throughput()
                .max(CoreConfig::fp_core().fu_for(c).peak_throughput());
            assert!(
                (strong.fu_for(c).peak_throughput() - best).abs() < 1e-12,
                "morphed strong must inherit the stronger {c} unit"
            );
            let worst = CoreConfig::int_core()
                .fu_for(c)
                .peak_throughput()
                .min(CoreConfig::fp_core().fu_for(c).peak_throughput());
            assert!((weak.fu_for(c).peak_throughput() - worst).abs() < 1e-12);
        }
        // Register resources follow the datapaths.
        assert_eq!(strong.int_regs, 96);
        assert_eq!(strong.fp_regs, 96);
        assert_eq!(weak.int_regs, 48);
        assert_eq!(weak.fp_regs, 48);
    }

    #[test]
    fn epoch_cycles_at_2ghz() {
        let c = CoreConfig::int_core();
        // 2 ms at 2 GHz = 4M cycles.
        assert_eq!(2 * c.cycles_per_ms(), 4_000_000);
    }
}
