//! Functional-unit pool occupancy tracking.

use crate::config::FuSpec;

/// Tracks when each unit of one pool becomes free.
///
/// A pipelined unit is occupied for one cycle per op (initiation interval
/// 1); a non-pipelined unit is occupied for the op's full latency — this is
/// the mechanism that throttles, e.g., FP throughput on the INT core.
#[derive(Debug, Clone)]
pub struct FuPool {
    spec: FuSpec,
    free_at: Vec<u64>,
}

impl FuPool {
    /// Build an idle pool.
    pub fn new(spec: FuSpec) -> Self {
        FuPool {
            spec,
            free_at: vec![0; spec.units as usize],
        }
    }

    /// The static spec.
    pub fn spec(&self) -> FuSpec {
        self.spec
    }

    /// Try to start an op at cycle `now`. Returns the completion cycle, or
    /// `None` if every unit is busy.
    pub fn try_issue(&mut self, now: u64) -> Option<u64> {
        for f in &mut self.free_at {
            if *f <= now {
                *f = if self.spec.pipelined {
                    now + 1
                } else {
                    now + self.spec.latency as u64
                };
                return Some(now + self.spec.latency as u64);
            }
        }
        None
    }

    /// Whether at least one unit is free at cycle `now`.
    pub fn available(&self, now: u64) -> bool {
        self.free_at.iter().any(|f| *f <= now)
    }

    /// Earliest cycle at which some unit is free (0 for an idle pool).
    pub fn earliest_free(&self) -> u64 {
        self.free_at.iter().copied().min().unwrap_or(0)
    }

    /// Occupancy state words, for state digests.
    pub fn free_at(&self) -> &[u64] {
        &self.free_at
    }

    /// Forget all occupancy (pipeline flush).
    pub fn reset(&mut self) {
        self.free_at.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_accepts_every_cycle() {
        let mut p = FuPool::new(FuSpec::new(1, 4, true));
        assert_eq!(p.try_issue(0), Some(4));
        assert!(!p.available(0), "initiation interval is 1 cycle");
        assert_eq!(p.try_issue(1), Some(5));
        assert_eq!(p.try_issue(2), Some(6));
    }

    #[test]
    fn non_pipelined_blocks_for_latency() {
        let mut p = FuPool::new(FuSpec::new(1, 4, false));
        assert_eq!(p.try_issue(0), Some(4));
        assert_eq!(p.try_issue(1), None);
        assert_eq!(p.try_issue(3), None);
        assert_eq!(p.try_issue(4), Some(8));
    }

    #[test]
    fn multiple_units() {
        let mut p = FuPool::new(FuSpec::new(2, 3, false));
        assert!(p.try_issue(0).is_some());
        assert!(p.try_issue(0).is_some(), "second unit free");
        assert!(p.try_issue(0).is_none(), "both busy");
        assert!(p.try_issue(3).is_some());
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut p = FuPool::new(FuSpec::new(1, 12, false));
        p.try_issue(0);
        assert!(!p.available(5));
        p.reset();
        assert!(p.available(5));
    }
}
