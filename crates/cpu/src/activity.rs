//! Microarchitectural activity counters consumed by the power model.
//!
//! `ampsched-power` follows the Wattch methodology: per-structure access
//! counts × per-access energies (scaled by structure size) + leakage.
//! This struct is the "per-structure access counts" half.

use ampsched_isa::ops::NUM_OP_CLASSES;

/// Event tallies since the last [`ActivityCounters::take`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Cycles elapsed (for leakage and clock power).
    pub cycles: u64,
    /// L1I line fetch accesses.
    pub icache_accesses: u64,
    /// Instructions renamed/dispatched (map-table + ROB write).
    pub dispatches: u64,
    /// Insertions into the integer issue queue.
    pub isq_int_inserts: u64,
    /// Insertions into the FP issue queue.
    pub isq_fp_inserts: u64,
    /// Wakeup/select operations performed on the integer queue
    /// (CAM activity ∝ occupancy each cycle).
    pub isq_int_wakeups: u64,
    /// Wakeup/select operations performed on the FP queue.
    pub isq_fp_wakeups: u64,
    /// Ops started per functional-unit class (indexed by `OpClass::index`;
    /// loads/stores/branches count their datapath usage here too).
    pub fu_ops: [u64; NUM_OP_CLASSES],
    /// Integer register-file reads.
    pub int_reg_reads: u64,
    /// Integer register-file writes.
    pub int_reg_writes: u64,
    /// FP register-file reads.
    pub fp_reg_reads: u64,
    /// FP register-file writes.
    pub fp_reg_writes: u64,
    /// Load-queue plus store-queue insertions.
    pub lsq_inserts: u64,
    /// L1D accesses (loads issued + stores committed).
    pub dcache_accesses: u64,
    /// Branch-predictor lookups.
    pub bpred_lookups: u64,
    /// Instructions committed (ROB read + retirement bookkeeping).
    pub commits: u64,
}

impl ActivityCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the current tallies and reset to zero — used by the power
    /// model at the end of each accounting window.
    pub fn take(&mut self) -> ActivityCounters {
        std::mem::take(self)
    }

    /// Accumulate another counter set (e.g. totals across windows).
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.cycles += other.cycles;
        self.icache_accesses += other.icache_accesses;
        self.dispatches += other.dispatches;
        self.isq_int_inserts += other.isq_int_inserts;
        self.isq_fp_inserts += other.isq_fp_inserts;
        self.isq_int_wakeups += other.isq_int_wakeups;
        self.isq_fp_wakeups += other.isq_fp_wakeups;
        for i in 0..NUM_OP_CLASSES {
            self.fu_ops[i] += other.fu_ops[i];
        }
        self.int_reg_reads += other.int_reg_reads;
        self.int_reg_writes += other.int_reg_writes;
        self.fp_reg_reads += other.fp_reg_reads;
        self.fp_reg_writes += other.fp_reg_writes;
        self.lsq_inserts += other.lsq_inserts;
        self.dcache_accesses += other.dcache_accesses;
        self.bpred_lookups += other.bpred_lookups;
        self.commits += other.commits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        let mut a = ActivityCounters::new();
        a.cycles = 10;
        a.commits = 5;
        let t = a.take();
        assert_eq!(t.cycles, 10);
        assert_eq!(a, ActivityCounters::default());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounters::new();
        a.fu_ops[0] = 3;
        a.commits = 1;
        let mut b = ActivityCounters::new();
        b.fu_ops[0] = 4;
        b.commits = 2;
        a.merge(&b);
        assert_eq!(a.fu_ops[0], 7);
        assert_eq!(a.commits, 3);
    }
}
