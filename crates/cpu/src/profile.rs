//! Read-only pipeline snapshot types for the sampled profiler.
//!
//! [`Core::pipe_snapshot`](crate::Core::pipe_snapshot) classifies the
//! pipeline at one cycle into a [`PipeSnapshot`]: structure occupancies,
//! the cumulative committed count (so a sampler can difference
//! consecutive snapshots into per-window throughput), and a total
//! [`StallCause`] classification of what the core is doing at that
//! instant. The types live here, decoupled from the sampler itself
//! (`ampsched-obs`), so the cpu crate stays dependency-free.

/// What the core is doing at the sampled cycle, classified by the head
/// of the reorder buffer — the in-order commit point, so whatever blocks
/// it is the pipeline's current bottleneck.
///
/// The five variants are **total**: `classify`'s decision tree has no
/// fall-through, so every possible core state maps to exactly one cause
/// (asserted by the profiler test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The ROB head is ready: the core is retiring work this cycle.
    Committing,
    /// The ROB head is an unfinished load or store — memory-bound.
    MemWait,
    /// The ROB head is an unfinished arithmetic or branch op —
    /// dependency- or functional-unit-bound.
    ExecWait,
    /// The window is empty and fetch is gated (swap-overhead stall, L1I
    /// miss, or branch-redirect penalty).
    FrontendStall,
    /// The window is empty and fetch is free to proceed — the stream is
    /// between ops (dispatch refills next cycle) or the core just
    /// flushed.
    FrontendEmpty,
}

/// Number of [`StallCause`] variants.
pub const NUM_STALL_CAUSES: usize = 5;

/// Display names, indexed by [`StallCause::code`].
pub const STALL_CAUSE_NAMES: [&str; NUM_STALL_CAUSES] =
    ["committing", "mem_wait", "exec_wait", "frontend_stall", "frontend_empty"];

/// All variants, in [`StallCause::code`] order.
pub const ALL_STALL_CAUSES: [StallCause; NUM_STALL_CAUSES] = [
    StallCause::Committing,
    StallCause::MemWait,
    StallCause::ExecWait,
    StallCause::FrontendStall,
    StallCause::FrontendEmpty,
];

impl StallCause {
    /// Dense code of this cause, matching [`ALL_STALL_CAUSES`] and
    /// [`STALL_CAUSE_NAMES`] order.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Display name of this cause.
    pub const fn name(self) -> &'static str {
        STALL_CAUSE_NAMES[self as usize]
    }
}

/// One read-only snapshot of the pipeline at a sampled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeSnapshot {
    /// Occupied reorder-buffer slots.
    pub rob: u32,
    /// Integer issue-queue entries.
    pub isq_int: u32,
    /// Floating-point issue-queue entries.
    pub isq_fp: u32,
    /// Load-queue entries.
    pub lq: u32,
    /// Store-queue entries.
    pub sq: u32,
    /// Cumulative committed instructions on this core (difference two
    /// snapshots for per-window throughput / issue-width utilization).
    pub committed: u64,
    /// Peak sustainable issue slots per cycle on this core
    /// (INT width + FP width + one load + one store), the denominator
    /// for utilization.
    pub issue_slots: u32,
    /// Stall classification at the sampled cycle.
    pub stall: StallCause,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_are_dense_and_named() {
        for (i, c) in ALL_STALL_CAUSES.iter().enumerate() {
            assert_eq!(c.code() as usize, i);
            assert_eq!(c.name(), STALL_CAUSE_NAMES[i]);
        }
        assert_eq!(ALL_STALL_CAUSES.len(), NUM_STALL_CAUSES);
    }
}
