//! The out-of-order core pipeline.
//!
//! Stage order inside [`Core::tick`] is commit → issue → dispatch, the
//! usual reverse-pipeline processing that prevents same-cycle
//! flow-through: an instruction dispatched in cycle *t* is issueable from
//! *t+1*, and a result produced in cycle *t* wakes consumers from *t*
//! onward (bypass network assumed).

use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{AccessKind, MemSystem};
use ampsched_trace::Workload;

use crate::activity::ActivityCounters;
use crate::config::CoreConfig;
use crate::fu::FuPool;
use crate::profile::{PipeSnapshot, StallCause};
use crate::stats::CoreStats;

/// Sentinel: result not yet produced.
const NOT_READY: u64 = u64::MAX;

// Indices into `Core::issue_wake`, one per issue structure.
const IW_INT: usize = 0;
const IW_FP: usize = 1;
const IW_LOADS: usize = 2;
const IW_STORES: usize = 3;

/// A resolved data dependency: the producing ROB slot plus its sequence
/// number (slot reuse is detected by sequence mismatch, which implies the
/// producer has committed and the value is architecturally available).
#[derive(Debug, Clone, Copy, Default)]
struct Dep {
    slot: u32,
    seq: u64, // 0 = no dependency
}

#[derive(Debug, Clone, Copy)]
struct RobSlot {
    seq: u64, // 0 = empty slot
    class: OpClass,
    dispatched_at: u64,
    /// Cycle the result is available; `NOT_READY` until issued.
    ready_at: u64,
    src1: Dep,
    src2: Dep,
    /// Destination register file: `Some(true)` = FP, `Some(false)` = INT.
    dst_fp: Option<bool>,
    addr: u64,
    mispredicted: bool,
}

impl Default for RobSlot {
    fn default() -> Self {
        RobSlot {
            seq: 0,
            class: OpClass::IntAlu,
            dispatched_at: 0,
            ready_at: NOT_READY,
            src1: Dep::default(),
            src2: Dep::default(),
            dst_fp: None,
            addr: 0,
            mispredicted: false,
        }
    }
}

/// Packed encoding of [`RobSlot::dst_fp`], shared with `state_digest`.
const DST_NONE: u8 = 0;
const DST_INT: u8 = 1;
const DST_FP: u8 = 2;

/// Reorder-buffer storage as a struct of parallel packed arrays.
///
/// The per-cycle sweeps — issue wakeup over the queues, the quiescence
/// event scan, dependency checks, the commit select — each read only one
/// or two fields of many slots. Packing each field densely keeps those
/// sweeps inside a handful of cache lines instead of striding across
/// ~88-byte `RobSlot` records, which is where the fast path's wide
/// stage passes get their locality.
///
/// The frozen reference stages keep reading and writing whole seed-shaped
/// [`RobSlot`] values through [`Rob::get`]/[`Rob::set`], so their stage
/// bodies stay semantically verbatim over the new layout. Both kernels
/// share this storage; there is no mirrored state to keep coherent.
struct Rob {
    seq: Vec<u64>,
    ready_at: Vec<u64>,
    dispatched_at: Vec<u64>,
    class: Vec<OpClass>,
    src1_slot: Vec<u32>,
    src1_seq: Vec<u64>,
    src2_slot: Vec<u32>,
    src2_seq: Vec<u64>,
    /// `DST_NONE` / `DST_INT` / `DST_FP`.
    dst_fp: Vec<u8>,
    addr: Vec<u64>,
    mispredicted: Vec<bool>,
}

impl Rob {
    fn new(cap: usize) -> Self {
        Rob {
            seq: vec![0; cap],
            ready_at: vec![NOT_READY; cap],
            dispatched_at: vec![0; cap],
            class: vec![OpClass::IntAlu; cap],
            src1_slot: vec![0; cap],
            src1_seq: vec![0; cap],
            src2_slot: vec![0; cap],
            src2_seq: vec![0; cap],
            dst_fp: vec![DST_NONE; cap],
            addr: vec![0; cap],
            mispredicted: vec![false; cap],
        }
    }

    /// Number of slots (the configured ROB size).
    #[inline]
    fn cap(&self) -> usize {
        self.seq.len()
    }

    /// Materialize slot `i` as the seed simulator's `RobSlot` value (the
    /// frozen reference stages consume whole slots, exactly as the seed
    /// did over the array-of-structs layout).
    #[inline]
    fn get(&self, i: usize) -> RobSlot {
        RobSlot {
            seq: self.seq[i],
            class: self.class[i],
            dispatched_at: self.dispatched_at[i],
            ready_at: self.ready_at[i],
            src1: Dep {
                slot: self.src1_slot[i],
                seq: self.src1_seq[i],
            },
            src2: Dep {
                slot: self.src2_slot[i],
                seq: self.src2_seq[i],
            },
            dst_fp: match self.dst_fp[i] {
                DST_NONE => None,
                DST_INT => Some(false),
                _ => Some(true),
            },
            addr: self.addr[i],
            mispredicted: self.mispredicted[i],
        }
    }

    /// Scatter a whole `RobSlot` value into the parallel arrays.
    #[inline]
    fn set(&mut self, i: usize, s: RobSlot) {
        self.seq[i] = s.seq;
        self.ready_at[i] = s.ready_at;
        self.dispatched_at[i] = s.dispatched_at;
        self.class[i] = s.class;
        self.src1_slot[i] = s.src1.slot;
        self.src1_seq[i] = s.src1.seq;
        self.src2_slot[i] = s.src2.slot;
        self.src2_seq[i] = s.src2.seq;
        self.dst_fp[i] = match s.dst_fp {
            None => DST_NONE,
            Some(false) => DST_INT,
            Some(true) => DST_FP,
        };
        self.addr[i] = s.addr;
        self.mispredicted[i] = s.mispredicted;
    }

    /// Is the value behind dependency (`slot`, `seq`) readable at `now`?
    /// A sequence mismatch means the producer committed (slot reuse), so
    /// the value is architecturally available.
    #[inline]
    fn dep_ready(&self, slot: u32, seq: u64, now: u64) -> bool {
        if seq == 0 {
            return true;
        }
        let i = slot as usize;
        self.seq[i] != seq || self.ready_at[i] <= now
    }

    /// The first cycle at which dependency (`slot`, `seq`) is readable:
    /// 0 when already architecturally available, the producer's
    /// `ready_at` when it has issued, [`NOT_READY`] when the completion
    /// time is still unknown. `dep_time(..) <= now` ⇔ `dep_ready(.., now)`,
    /// and the value can only move *earlier* through a `ready_at` write
    /// (an issue event) — never through commit, which needs
    /// `ready_at <= now` itself. The issue-horizon skips below rely on
    /// exactly that monotonicity.
    #[inline]
    fn dep_time(&self, slot: u32, seq: u64) -> u64 {
        if seq == 0 {
            return 0;
        }
        let i = slot as usize;
        if self.seq[i] != seq {
            0
        } else {
            self.ready_at[i]
        }
    }
}

/// One out-of-order core executing a [`Workload`] stream.
pub struct Core {
    cfg: CoreConfig,
    core_id: usize,

    // Reorder buffer (ring), stored as parallel packed arrays.
    rob: Rob,
    rob_head: usize,
    rob_len: usize,
    next_seq: u64,

    // Rename state: last writer of each architectural register.
    last_writer: [Dep; ampsched_isa::regs::NUM_ARCH_REGS],
    int_free: u16,
    fp_free: u16,

    // Scheduler queues: ROB slot indices in age order.
    isq_int: Vec<u32>,
    isq_fp: Vec<u32>,
    loads: Vec<u32>,
    stores: Vec<u32>,

    // Fast-path indices over `loads`/`stores`: the age-ordered subset
    // that has not issued yet, so the per-cycle issue scans skip entries
    // that already issued and are only waiting for data or commit.
    // Maintained by the fast path only (`dispatch`/`issue_loads`/
    // `issue_stores`); the frozen reference stages never read them, and
    // as derived state they are excluded from `state_digest`. A core must
    // be driven through one kernel path for its whole lifetime (both
    // runners guarantee this).
    loads_unissued: Vec<u32>,
    stores_unissued: Vec<u32>,

    // Issue horizons (fast path only): `issue_wake[q]` is a proven lower
    // bound on the next cycle at which issue structure `q` could grant
    // anything, so sweeps at cycles strictly below it are skipped
    // entirely. A full sweep that grants nothing computes the bound from
    // its failure causes (producer `ready_at`, dispatch cycle, FU
    // occupancy); any issue event drags every horizon down to its
    // completion time (a dependent cannot wake before its producer's
    // `ready_at`), a dispatch insert zeroes the target queue's horizon,
    // and a flush or the reference path resets them all. Derived state:
    // excluded from `state_digest`, never read by the `ref_*` stages.
    issue_wake: [u64; 4],

    // Per-entry wake caches for the four issue structures, maintained in
    // lockstep with `isq_int`/`isq_fp`/`loads_unissued`/`stores_unissued`
    // by the fast path (push on dispatch, compact or remove with the
    // sweep). `wake[i]` is a sound lower bound on entry `i`'s first
    // eligible cycle: finite bounds stay valid forever (dep times are
    // immutable once known, FU pools only get busier, and a load's
    // blocking stores are all present at dispatch — in-order dispatch —
    // and cannot leave the store queue before their own `ready_at`),
    // while `NOT_READY` means "blocked on a producer or store whose
    // completion is unknown" and must be re-examined once any issue
    // event lands — `isq_recheck[q]` tracks the earliest such event per
    // structure (indexed by `IW_*`). The sweep skips a cached entry with
    // one compare instead of re-reading its whole dependency state (for
    // loads that includes the O(store-queue) disambiguation scan). The
    // reference path clears the caches (its frozen stages push/remove
    // without maintaining them); the fast sweeps re-align a cleared
    // cache by refilling with zeros.
    isq_int_wake: Vec<u64>,
    isq_fp_wake: Vec<u64>,
    loads_wake: Vec<u64>,
    stores_wake: Vec<u64>,
    isq_recheck: [u64; 4],

    // Functional units (six arithmetic classes).
    fus: [FuPool; 6],

    // Frontend state.
    pending: Option<MicroOp>,
    fetch_ready_at: u64,
    last_fetch_line: u64,
    waiting_branch: Option<Dep>,
    redirect_until: u64,

    /// Architectural statistics.
    pub stats: CoreStats,
    /// Power-model activity counters.
    pub activity: ActivityCounters,
}

impl Core {
    /// Build an idle core.
    pub fn new(cfg: CoreConfig, core_id: usize) -> Self {
        cfg.validate();
        let fus = [
            FuPool::new(cfg.fu[0]),
            FuPool::new(cfg.fu[1]),
            FuPool::new(cfg.fu[2]),
            FuPool::new(cfg.fu[3]),
            FuPool::new(cfg.fu[4]),
            FuPool::new(cfg.fu[5]),
        ];
        Core {
            rob: Rob::new(cfg.rob_size as usize),
            rob_head: 0,
            rob_len: 0,
            next_seq: 1,
            last_writer: [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS],
            int_free: cfg.int_rename_pool(),
            fp_free: cfg.fp_rename_pool(),
            isq_int: Vec::with_capacity(cfg.int_isq as usize),
            isq_fp: Vec::with_capacity(cfg.fp_isq as usize),
            loads: Vec::with_capacity(cfg.lsq_loads as usize),
            stores: Vec::with_capacity(cfg.lsq_stores as usize),
            loads_unissued: Vec::with_capacity(cfg.lsq_loads as usize),
            stores_unissued: Vec::with_capacity(cfg.lsq_stores as usize),
            issue_wake: [0; 4],
            isq_int_wake: Vec::with_capacity(cfg.int_isq as usize),
            isq_fp_wake: Vec::with_capacity(cfg.fp_isq as usize),
            loads_wake: Vec::with_capacity(cfg.lsq_loads as usize),
            stores_wake: Vec::with_capacity(cfg.lsq_stores as usize),
            isq_recheck: [NOT_READY; 4],
            fus,
            pending: None,
            fetch_ready_at: 0,
            last_fetch_line: u64::MAX,
            waiting_branch: None,
            redirect_until: 0,
            stats: CoreStats::default(),
            activity: ActivityCounters::new(),
            cfg,
            core_id,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Core index within the system (selects L1s in the [`MemSystem`]).
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Occupied ROB entries (diagnostics/tests).
    pub fn rob_occupancy(&self) -> usize {
        self.rob_len
    }

    #[inline]
    fn dep_ready(&self, dep: Dep, now: u64) -> bool {
        // Slot reused or freed => producer committed => value available.
        self.rob.dep_ready(dep.slot, dep.seq, now)
    }

    /// Drag every issue horizon down to `t`: an issue event with
    /// completion time `t` may wake dependents in any structure, but none
    /// of them before the producing result is ready. Entries cached as
    /// blocked-on-unknown-producer must be re-examined from `t` as well.
    #[inline]
    fn wake_all_at(&mut self, t: u64) {
        for w in &mut self.issue_wake {
            *w = (*w).min(t);
        }
        for r in &mut self.isq_recheck {
            *r = (*r).min(t);
        }
    }

    #[inline]
    fn srcs_ready(&self, slot: &RobSlot, now: u64) -> bool {
        self.dep_ready(slot.src1, now) && self.dep_ready(slot.src2, now)
    }

    /// Advance the core by one cycle. Returns the number of instructions
    /// committed this cycle.
    ///
    /// This is the *fast path*: its commit/issue/dispatch stages are
    /// restructured for wall-clock speed (queue compaction instead of
    /// repeated `Vec::remove`, field loads instead of whole-slot copies,
    /// hoisted structural limits, inlined activity accounting) but must
    /// stay cycle- and counter-identical to
    /// [`Core::reference_tick`]. The differential suite in
    /// `crates/cpu/tests/differential.rs` enforces that equivalence.
    pub fn tick(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) -> u32 {
        self.stats.cycles += 1;
        self.activity.cycles += 1;
        let committed = self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch(now, workload, mem);
        committed
    }

    /// Advance the core by one cycle through the frozen *reference path*.
    ///
    /// The `ref_*` stage bodies below are the seed simulator's original
    /// commit/issue/dispatch implementations, kept verbatim as the
    /// bit-exactness baseline for [`Core::tick`] and
    /// [`Core::fast_forward`]. Do not
    /// optimize them; optimize `tick` and prove equivalence against this.
    pub fn reference_tick(
        &mut self,
        now: u64,
        workload: &mut dyn Workload,
        mem: &mut MemSystem,
    ) -> u32 {
        self.stats.cycles += 1;
        self.activity.cycles += 1;
        // The frozen stages below mutate `ready_at` and the queues
        // without maintaining the fast path's issue horizons or wake
        // caches; keep them inert so a core that ever ran reference
        // ticks can still be ticked fast safely (the fast sweep refills
        // a cleared cache with zeros, forcing full re-examination).
        self.issue_wake = [0; 4];
        self.isq_int_wake.clear();
        self.isq_fp_wake.clear();
        self.loads_wake.clear();
        self.stores_wake.clear();
        self.isq_recheck = [0; 4];
        let committed = self.ref_commit(now, mem);
        self.ref_issue(now, mem);
        self.ref_dispatch(now, workload, mem);
        committed
    }

    // --- Commit ------------------------------------------------------

    fn commit(&mut self, now: u64, mem: &mut MemSystem) -> u32 {
        let width = self.cfg.commit_width as u32;
        let rob_cap = self.rob.cap();
        // Select pass: sweep the ring head over the packed `ready_at`
        // array to size this cycle's retirement batch. Retiring an op
        // never changes a younger op's `ready_at`, so the batch decided
        // here equals what the per-op interleaved loop would retire.
        // Branchy ring wrap instead of `%`: the capacity is not a power
        // of two, so modulo compiles to an integer division on the
        // per-op path.
        let mut n = 0u32;
        let mut idx = self.rob_head;
        while n < width && (n as usize) < self.rob_len && self.rob.ready_at[idx] <= now {
            n += 1;
            idx += 1;
            if idx == rob_cap {
                idx = 0;
            }
        }
        if n == 0 {
            return 0;
        }
        // Retire pass: per-op bookkeeping for the whole batch, reading
        // only the fields each op class needs from the packed arrays.
        let mut idx = self.rob_head;
        for _ in 0..n {
            let class = self.rob.class[idx];
            match class {
                OpClass::Store => {
                    // Write-back through the store buffer: update cache
                    // state; latency is off the critical path.
                    let _ = mem.access(self.core_id, AccessKind::Store, self.rob.addr[idx], now);
                    self.activity.dcache_accesses += 1;
                    // Free the store-queue entry (the head is the oldest
                    // store, so this is the front in the common case).
                    if let Some(pos) = self.stores.iter().position(|&s| s == idx as u32) {
                        self.stores.remove(pos);
                    }
                }
                OpClass::Load => {
                    if let Some(pos) = self.loads.iter().position(|&s| s == idx as u32) {
                        self.loads.remove(pos);
                    }
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if self.rob.mispredicted[idx] {
                        self.stats.mispredicts += 1;
                    }
                }
                _ => {}
            }
            match self.rob.dst_fp[idx] {
                DST_FP => self.fp_free += 1,
                DST_INT => self.int_free += 1,
                _ => {}
            }
            self.stats.committed.record(class);
            self.rob.seq[idx] = 0;
            idx += 1;
            if idx == rob_cap {
                idx = 0;
            }
        }
        self.activity.commits += n as u64;
        self.rob_head = idx;
        self.rob_len -= n as usize;
        n
    }

    /// Reference copy of the seed simulator's commit stage (frozen).
    fn ref_commit(&mut self, now: u64, mem: &mut MemSystem) -> u32 {
        let mut n = 0u32;
        while n < self.cfg.commit_width as u32 && self.rob_len > 0 {
            let idx = self.rob_head;
            let slot = self.rob.get(idx);
            if slot.ready_at > now {
                break;
            }
            match slot.class {
                OpClass::Store => {
                    let _ = mem.access(self.core_id, AccessKind::Store, slot.addr, now);
                    self.activity.dcache_accesses += 1;
                    if let Some(pos) = self.stores.iter().position(|&s| s == idx as u32) {
                        self.stores.remove(pos);
                    }
                }
                OpClass::Load => {
                    if let Some(pos) = self.loads.iter().position(|&s| s == idx as u32) {
                        self.loads.remove(pos);
                    }
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if slot.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                _ => {}
            }
            if let Some(fp) = slot.dst_fp {
                if fp {
                    self.fp_free += 1;
                } else {
                    self.int_free += 1;
                }
            }
            self.stats.committed.record(slot.class);
            self.activity.commits += 1;
            self.rob.seq[idx] = 0;
            self.rob_head = (self.rob_head + 1) % self.rob.cap();
            self.rob_len -= 1;
            n += 1;
        }
        n
    }

    // --- Issue -------------------------------------------------------

    fn issue(&mut self, now: u64, mem: &mut MemSystem) {
        // CAM wakeup energy ∝ queue occupancy (charged every cycle, even
        // when a sweep below is skipped: the CAM still burns power).
        self.activity.isq_int_wakeups += self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += self.isq_fp.len() as u64;

        // Sweep each structure only at or past its issue horizon: below
        // it, the sweep is proven to grant nothing and mutate nothing.
        if self.issue_wake[IW_INT] <= now {
            self.issue_arith_queue(false, now);
        }
        if self.issue_wake[IW_FP] <= now {
            self.issue_arith_queue(true, now);
        }
        if self.issue_wake[IW_LOADS] <= now {
            self.issue_loads(now, mem);
        }
        if self.issue_wake[IW_STORES] <= now {
            self.issue_stores(now);
        }
    }

    /// Reference copy of the seed simulator's issue stage (frozen).
    fn ref_issue(&mut self, now: u64, mem: &mut MemSystem) {
        self.activity.isq_int_wakeups += self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += self.isq_fp.len() as u64;

        self.ref_issue_arith_queue(false, now);
        self.ref_issue_arith_queue(true, now);
        self.ref_issue_loads(now, mem);
        self.ref_issue_stores(now);
    }

    fn issue_arith_queue(&mut self, fp: bool, now: u64) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        } as usize;
        // One wide wakeup/select sweep per cycle: a single compaction
        // pass over the whole queue batch instead of `Vec::remove` per
        // issued op — surviving entries are written back in place, so age
        // order is preserved with no quadratic shifting. Every per-entry
        // check is a packed-array read (`dispatched_at`, then the
        // `seq`/`ready_at` pairs behind each source), so the sweep stays
        // in a few hot cache lines. A failed `try_issue` does not mutate
        // the pool, so attempting entries in the same order yields the
        // same grants as the reference.
        let q = if fp { IW_FP } else { IW_INT };
        let mut queue = std::mem::take(if fp { &mut self.isq_fp } else { &mut self.isq_int });
        let mut wakes = std::mem::take(if fp {
            &mut self.isq_fp_wake
        } else {
            &mut self.isq_int_wake
        });
        // Re-align a cache the reference path cleared (or a fresh core):
        // zeros force a full re-examination, which is always sound.
        if wakes.len() != queue.len() {
            wakes.clear();
            wakes.resize(queue.len(), 0);
        }
        let recheck = self.isq_recheck[q];
        let mut issued = 0usize;
        let mut kept = 0usize;
        let mut i = 0usize;
        // Issue-horizon accumulators: `earliest` is the min over failing
        // entries of the first cycle each could become eligible;
        // `min_done` is the min completion time of this sweep's grants
        // (dependents anywhere cannot wake before that).
        let mut earliest = u64::MAX;
        let mut min_done = u64::MAX;
        let mut skipped_unknown = false;
        while i < queue.len() && issued < width {
            // Cached skip: a finite bound stays sound forever; an unknown
            // one (`NOT_READY`) holds until the recheck event.
            let cached = wakes[i];
            if cached > now && (cached != NOT_READY || recheck > now) {
                earliest = earliest.min(cached);
                skipped_unknown |= cached == NOT_READY;
                queue[kept] = queue[i];
                wakes[kept] = cached;
                kept += 1;
                i += 1;
                continue;
            }
            let slot_idx = queue[i] as usize;
            let mut keep = true;
            let mut entry_wake = now + 1; // dispatched-this-cycle default
            if self.rob.dispatched_at[slot_idx] < now {
                let s1_seq = self.rob.src1_seq[slot_idx];
                let s2_seq = self.rob.src2_seq[slot_idx];
                let d1 = self.rob.dep_time(self.rob.src1_slot[slot_idx], s1_seq);
                let d2 = self.rob.dep_time(self.rob.src2_slot[slot_idx], s2_seq);
                if d1 <= now && d2 <= now {
                    let class = self.rob.class[slot_idx];
                    let done_at = if class.is_branch() {
                        // Dedicated branch/condition unit, 1-cycle latency.
                        Some(now + 1)
                    } else {
                        self.fus[class.index()].try_issue(now)
                    };
                    if let Some(done_at) = done_at {
                        self.rob.ready_at[slot_idx] = done_at;
                        min_done = min_done.min(done_at);
                        // count_issue, inlined from the packed fields.
                        self.activity.fu_ops[class.index()] += 1;
                        let reads = (s1_seq != 0) as u64 + (s2_seq != 0) as u64;
                        if class.is_fp() {
                            self.activity.fp_reg_reads += reads;
                        } else {
                            self.activity.int_reg_reads += reads;
                        }
                        match self.rob.dst_fp[slot_idx] {
                            DST_FP => self.activity.fp_reg_writes += 1,
                            DST_INT => self.activity.int_reg_writes += 1,
                            _ => {}
                        }
                        issued += 1;
                        keep = false;
                    } else {
                        // Every unit busy; the pool only gets busier
                        // within this sweep, so its current earliest-free
                        // time is a sound (conservative) wake bound.
                        entry_wake = self.fus[class.index()].earliest_free();
                        earliest = earliest.min(entry_wake);
                    }
                } else {
                    // Not ready: eligible no earlier than the later source
                    // (`NOT_READY` saturates — wake comes via an issue
                    // event instead).
                    entry_wake = d1.max(d2);
                    earliest = earliest.min(entry_wake);
                }
            } else {
                // Dispatched this very cycle: eligible next cycle.
                earliest = earliest.min(now + 1);
            }
            if keep {
                queue[kept] = queue[i];
                wakes[kept] = entry_wake;
                kept += 1;
            }
            i += 1;
        }
        // Issue width exhausted: the rest of the queue survives untouched,
        // so bulk-move it instead of inspecting each entry — but those
        // entries were never examined, so the horizon cannot rise past
        // the next cycle.
        let full_scan = i == queue.len();
        if !full_scan {
            queue.copy_within(i.., kept);
            wakes.copy_within(i.., kept);
            kept += queue.len() - i;
            earliest = now + 1;
        }
        queue.truncate(kept);
        wakes.truncate(kept);
        if fp {
            self.isq_fp = queue;
            self.isq_fp_wake = wakes;
        } else {
            self.isq_int = queue;
            self.isq_int_wake = wakes;
        }
        if full_scan && recheck <= now {
            // Every unknown-producer entry was just re-examined; the next
            // issue event will lower this again.
            self.isq_recheck[q] = NOT_READY;
        }
        // Unknown-producer entries that were skip-kept under `recheck > now`
        // contribute nothing to `earliest`; the horizon must not overwrite
        // the pending recheck bound, or those entries sleep forever.
        let mut wake = earliest.min(min_done);
        if skipped_unknown {
            wake = wake.min(self.isq_recheck[q]);
        }
        self.issue_wake[q] = wake;
        if min_done != u64::MAX {
            // Grants this sweep: dependents in any structure may wake
            // once the earliest result is ready.
            self.wake_all_at(min_done);
        }
    }

    /// Reference copy of the seed simulator's arithmetic issue (frozen).
    fn ref_issue_arith_queue(&mut self, fp: bool, now: u64) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        } as usize;
        let mut issued = 0usize;
        let mut i = 0usize;
        while i < if fp { self.isq_fp.len() } else { self.isq_int.len() } {
            if issued >= width {
                break;
            }
            let slot_idx = if fp { self.isq_fp[i] } else { self.isq_int[i] } as usize;
            let slot = self.rob.get(slot_idx);
            let eligible = slot.dispatched_at < now && self.srcs_ready(&slot, now);
            if eligible {
                let done_at = if slot.class.is_branch() {
                    // Dedicated branch/condition unit, 1-cycle latency.
                    Some(now + 1)
                } else {
                    self.fus[slot.class.index()].try_issue(now)
                };
                if let Some(done_at) = done_at {
                    self.rob.ready_at[slot_idx] = done_at;
                    self.count_issue(&slot);
                    if fp {
                        self.isq_fp.remove(i);
                    } else {
                        self.isq_int.remove(i);
                    }
                    issued += 1;
                    continue; // do not advance i: element removed
                }
            }
            i += 1;
        }
    }

    fn count_issue(&mut self, slot: &RobSlot) {
        self.activity.fu_ops[slot.class.index()] += 1;
        // Register file reads for each real source, writes for the dest.
        let fp_domain = slot.class.is_fp();
        let reads = (slot.src1.seq != 0) as u64 + (slot.src2.seq != 0) as u64;
        if fp_domain {
            self.activity.fp_reg_reads += reads;
        } else {
            self.activity.int_reg_reads += reads;
        }
        match slot.dst_fp {
            Some(true) => self.activity.fp_reg_writes += 1,
            Some(false) => self.activity.int_reg_writes += 1,
            None => {}
        }
    }

    fn issue_loads(&mut self, now: u64, mem: &mut MemSystem) {
        // One load port: the oldest ready load issues. Entries stay in
        // `loads` until commit (they hold the LQ slot), but the per-cycle
        // scan walks only `loads_unissued` — entries that issued already
        // are just waiting for data or commit and can never issue again.
        // Fast path: load only the fields needed, skip the store scan
        // when the store queue is empty, and inline the issue accounting
        // (loads use the integer datapath and never a branch/FP unit).
        //
        // Per-entry cache: `loads_wake[i]` bounds entry `i`'s first
        // eligible cycle, so a waiting load costs one compare instead of
        // the dependency checks plus the O(store-queue) disambiguation
        // scan. The bound is permanent when finite — dep times are
        // immutable once known, and a load's blocking stores are all
        // older, hence present at its dispatch (in-order), and cannot
        // leave the queue before their own `ready_at`. `NOT_READY` means
        // some producer or blocking store has not issued yet; those
        // entries re-examine at the next issue event (`isq_recheck`).
        if self.loads_wake.len() != self.loads_unissued.len() {
            // Reference path ran in between: rebuild with zeros (full
            // re-examination is always sound).
            self.loads_wake.clear();
            self.loads_wake.resize(self.loads_unissued.len(), 0);
        }
        let recheck = self.isq_recheck[IW_LOADS];
        let mut earliest = u64::MAX;
        let mut skipped_unknown = false;
        for i in 0..self.loads_unissued.len() {
            let cached = self.loads_wake[i];
            if cached > now && (cached != NOT_READY || recheck > now) {
                earliest = earliest.min(cached);
                skipped_unknown |= cached == NOT_READY;
                continue;
            }
            let slot_idx = self.loads_unissued[i] as usize;
            let da = self.rob.dispatched_at[slot_idx];
            if da >= now {
                self.loads_wake[i] = now + 1; // dispatched this cycle
                earliest = earliest.min(now + 1);
                continue;
            }
            let s1_seq = self.rob.src1_seq[slot_idx];
            let s2_seq = self.rob.src2_seq[slot_idx];
            let d1 = self.rob.dep_time(self.rob.src1_slot[slot_idx], s1_seq);
            let d2 = self.rob.dep_time(self.rob.src2_slot[slot_idx], s2_seq);
            if d1 > now || d2 > now {
                self.loads_wake[i] = d1.max(d2);
                earliest = earliest.min(d1.max(d2));
                continue;
            }
            let seq = self.rob.seq[slot_idx];
            let addr = self.rob.addr[slot_idx];
            // Disambiguation against older, in-flight stores to the same
            // 8-byte word (addresses are exact in a trace-driven model):
            // a dense sweep over the store queue's `seq`/`addr`/`ready_at`
            // columns.
            let mut blocked = false;
            let mut forward = false;
            // The load unblocks once the *last* matching older store has
            // its data (a store can never leave the queue before its own
            // `ready_at`, so retirement cannot unblock it any earlier).
            let mut unblock_at = 0u64;
            if !self.stores.is_empty() {
                let word = addr >> 3;
                for &st_idx in &self.stores {
                    let st = st_idx as usize;
                    if self.rob.seq[st] >= seq {
                        continue; // younger store: irrelevant
                    }
                    if self.rob.addr[st] >> 3 == word {
                        let r = self.rob.ready_at[st];
                        if r == NOT_READY || r > now {
                            blocked = true; // store data not ready yet
                            unblock_at = unblock_at.max(r);
                        } else {
                            forward = true;
                        }
                    }
                }
            }
            if blocked {
                self.loads_wake[i] = unblock_at;
                earliest = earliest.min(unblock_at);
                continue;
            }
            let done_at = if forward {
                now + 1 // store-to-load forwarding
            } else {
                let lat = mem.access(self.core_id, AccessKind::Load, addr, now);
                self.activity.dcache_accesses += 1;
                now + lat as u64
            };
            self.rob.ready_at[slot_idx] = done_at;
            // count_issue, inlined: Load is integer-domain, non-FP dest
            // unless the load targets an FP register.
            self.activity.fu_ops[OpClass::Load.index()] += 1;
            self.activity.int_reg_reads += (s1_seq != 0) as u64 + (s2_seq != 0) as u64;
            match self.rob.dst_fp[slot_idx] {
                DST_FP => self.activity.fp_reg_writes += 1,
                DST_INT => self.activity.int_reg_writes += 1,
                _ => {}
            }
            self.loads_unissued.remove(i);
            self.loads_wake.remove(i);
            // Single load port: the rest of the queue was not examined,
            // and this grant may wake dependents anywhere.
            self.issue_wake[IW_LOADS] = now + 1;
            self.wake_all_at(done_at);
            return;
        }
        // Nothing issued and every non-skipped unissued load examined.
        if recheck <= now {
            self.isq_recheck[IW_LOADS] = NOT_READY;
        }
        // As in the arith sweep: skip-kept unknown entries are covered by
        // the pending recheck bound, which the horizon must respect.
        let mut wake = earliest;
        if skipped_unknown {
            wake = wake.min(self.isq_recheck[IW_LOADS]);
        }
        self.issue_wake[IW_LOADS] = wake;
    }

    /// Reference copy of the seed simulator's load issue (frozen).
    fn ref_issue_loads(&mut self, now: u64, mem: &mut MemSystem) {
        for i in 0..self.loads.len() {
            let slot_idx = self.loads[i];
            let slot = self.rob.get(slot_idx as usize);
            if slot.ready_at != NOT_READY {
                continue; // already issued, waiting for data
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            let mut blocked = false;
            let mut forward_from: Option<u64> = None;
            for &st_idx in &self.stores {
                let st = self.rob.get(st_idx as usize);
                if st.seq >= slot.seq {
                    continue; // younger store: irrelevant
                }
                if st.addr >> 3 == slot.addr >> 3 {
                    if st.ready_at == NOT_READY || st.ready_at > now {
                        blocked = true; // store data not ready yet
                    } else {
                        forward_from = Some(st.ready_at);
                    }
                }
            }
            if blocked {
                continue;
            }
            let slot_idx = slot_idx as usize;
            let done_at = if forward_from.is_some() {
                now + 1 // store-to-load forwarding
            } else {
                let lat = mem.access(self.core_id, AccessKind::Load, slot.addr, now);
                self.activity.dcache_accesses += 1;
                now + lat as u64
            };
            self.rob.ready_at[slot_idx] = done_at;
            let s = self.rob.get(slot_idx);
            self.count_issue(&s);
            break;
        }
    }

    fn issue_stores(&mut self, now: u64) {
        // One store port: compute address + capture data. Fast path:
        // walk only the unissued subset, with field loads plus inlined
        // accounting (stores are integer-domain and never have a
        // destination register). Per-entry cache as in `issue_loads`,
        // minus the disambiguation term (stores have none).
        if self.stores_wake.len() != self.stores_unissued.len() {
            self.stores_wake.clear();
            self.stores_wake.resize(self.stores_unissued.len(), 0);
        }
        let recheck = self.isq_recheck[IW_STORES];
        let mut earliest = u64::MAX;
        let mut skipped_unknown = false;
        for i in 0..self.stores_unissued.len() {
            let cached = self.stores_wake[i];
            if cached > now && (cached != NOT_READY || recheck > now) {
                earliest = earliest.min(cached);
                skipped_unknown |= cached == NOT_READY;
                continue;
            }
            let slot_idx = self.stores_unissued[i] as usize;
            if self.rob.dispatched_at[slot_idx] >= now {
                self.stores_wake[i] = now + 1; // dispatched this cycle
                earliest = earliest.min(now + 1);
                continue;
            }
            let s1_seq = self.rob.src1_seq[slot_idx];
            let s2_seq = self.rob.src2_seq[slot_idx];
            let d1 = self.rob.dep_time(self.rob.src1_slot[slot_idx], s1_seq);
            let d2 = self.rob.dep_time(self.rob.src2_slot[slot_idx], s2_seq);
            if d1 > now || d2 > now {
                self.stores_wake[i] = d1.max(d2);
                earliest = earliest.min(d1.max(d2));
                continue;
            }
            self.rob.ready_at[slot_idx] = now + 1;
            self.activity.fu_ops[OpClass::Store.index()] += 1;
            self.activity.int_reg_reads += (s1_seq != 0) as u64 + (s2_seq != 0) as u64;
            match self.rob.dst_fp[slot_idx] {
                DST_FP => self.activity.fp_reg_writes += 1,
                DST_INT => self.activity.int_reg_writes += 1,
                _ => {}
            }
            self.stores_unissued.remove(i);
            self.stores_wake.remove(i);
            // Single store port: unexamined tail + a grant that may wake
            // dependents (store-to-load forwarding) next cycle.
            self.issue_wake[IW_STORES] = now + 1;
            self.wake_all_at(now + 1);
            return;
        }
        // Nothing issued and every non-skipped unissued store examined.
        if recheck <= now {
            self.isq_recheck[IW_STORES] = NOT_READY;
        }
        let mut wake = earliest;
        if skipped_unknown {
            wake = wake.min(self.isq_recheck[IW_STORES]);
        }
        self.issue_wake[IW_STORES] = wake;
    }

    /// Reference copy of the seed simulator's store issue (frozen).
    fn ref_issue_stores(&mut self, now: u64) {
        for &slot_idx in &self.stores {
            let slot = self.rob.get(slot_idx as usize);
            if slot.ready_at != NOT_READY {
                continue;
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            self.rob.ready_at[slot_idx as usize] = now + 1;
            let s = self.rob.get(slot_idx as usize);
            self.count_issue(&s);
            break;
        }
    }

    // --- Dispatch ----------------------------------------------------

    fn dispatch(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) {
        // Unresolved mispredicted branch: frontend fetches the wrong path;
        // no correct-path instructions enter until resolve + penalty.
        if let Some(dep) = self.waiting_branch {
            let i = dep.slot as usize;
            let (slot_seq, slot_ready) = (self.rob.seq[i], self.rob.ready_at[i]);
            let resolved = slot_seq != dep.seq || slot_ready <= now;
            if resolved {
                let resolve_time = if slot_seq == dep.seq { slot_ready } else { now };
                self.redirect_until =
                    resolve_time.max(now) + self.cfg.mispredict_penalty as u64;
                self.waiting_branch = None;
            } else {
                self.stats.redirect_stall_cycles += 1;
                return;
            }
        }
        if self.redirect_until > now {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        if self.fetch_ready_at > now {
            self.stats.icache_stall_cycles += 1;
            return;
        }

        // Structural limits are fixed for the core's lifetime; hoist them
        // out of the per-slot loop so the hot path reads locals only.
        let width = self.cfg.dispatch_width;
        let rob_cap = self.rob.cap();
        let lsq_loads = self.cfg.lsq_loads as usize;
        let lsq_stores = self.cfg.lsq_stores as usize;
        let fp_isq = self.cfg.fp_isq as usize;
        let int_isq = self.cfg.int_isq as usize;
        let l1_latency = mem.config().l1_latency;

        for _ in 0..width {
            // Refill the peek buffer.
            if self.pending.is_none() {
                self.pending = Some(workload.next_op());
            }
            let op = *self.pending.as_ref().expect("just filled");

            // Instruction-cache access on line crossing.
            let line = op.pc >> 6;
            if line != self.last_fetch_line {
                let lat = mem.access(self.core_id, AccessKind::Ifetch, op.pc, now);
                self.activity.icache_accesses += 1;
                self.last_fetch_line = line;
                if lat > l1_latency {
                    // Miss: frontend refills; retry once the line arrives.
                    self.fetch_ready_at = now + lat as u64;
                    self.stats.icache_stall_cycles += 1;
                    return;
                }
            }

            // Structural hazards.
            if self.rob_len == rob_cap {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let dst_fp = op.effective_dst().map(|r| r.is_fp());
            match dst_fp {
                Some(true) if self.fp_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                Some(false) if self.int_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                _ => {}
            }
            match op.class {
                OpClass::Load => {
                    if self.loads.len() >= lsq_loads {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                OpClass::Store => {
                    if self.stores.len() >= lsq_stores {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                c if c.is_fp() => {
                    if self.isq_fp.len() >= fp_isq {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
                _ => {
                    if self.isq_int.len() >= int_isq {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
            }

            // All clear: allocate and rename.
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut tail = self.rob_head + self.rob_len;
            if tail >= rob_cap {
                tail -= rob_cap;
            }

            let dep_of = |r: Option<ArchReg>, lw: &[Dep]| -> Dep {
                match r {
                    Some(r) if !r.is_zero() => lw[r.flat_index()],
                    _ => Dep::default(),
                }
            };
            let src1 = dep_of(op.src1, &self.last_writer);
            let src2 = dep_of(op.src2, &self.last_writer);

            // Scatter the new op across the packed columns (one store per
            // column; the per-cycle sweeps read them back densely).
            self.rob.seq[tail] = seq;
            self.rob.class[tail] = op.class;
            self.rob.dispatched_at[tail] = now;
            self.rob.ready_at[tail] = NOT_READY;
            self.rob.src1_slot[tail] = src1.slot;
            self.rob.src1_seq[tail] = src1.seq;
            self.rob.src2_slot[tail] = src2.slot;
            self.rob.src2_seq[tail] = src2.seq;
            self.rob.dst_fp[tail] = match dst_fp {
                None => DST_NONE,
                Some(false) => DST_INT,
                Some(true) => DST_FP,
            };
            self.rob.addr[tail] = op.addr;
            self.rob.mispredicted[tail] = op.class.is_branch() && !op.predicted_correctly;
            self.rob_len += 1;
            self.pending = None;

            if let Some(dst) = op.effective_dst() {
                self.last_writer[dst.flat_index()] = Dep {
                    slot: tail as u32,
                    seq,
                };
                if dst.is_fp() {
                    self.fp_free -= 1;
                } else {
                    self.int_free -= 1;
                }
            }

            self.activity.dispatches += 1;
            // A fresh entry is eligible next cycle: zero the target
            // structure's issue horizon.
            match op.class {
                OpClass::Load | OpClass::Store => {
                    self.activity.lsq_inserts += 1;
                    if op.class == OpClass::Load {
                        self.loads.push(tail as u32);
                        self.loads_unissued.push(tail as u32);
                        self.loads_wake.push(0);
                        self.issue_wake[IW_LOADS] = 0;
                    } else {
                        self.stores.push(tail as u32);
                        self.stores_unissued.push(tail as u32);
                        self.stores_wake.push(0);
                        self.issue_wake[IW_STORES] = 0;
                    }
                }
                c if c.is_fp() => {
                    self.activity.isq_fp_inserts += 1;
                    self.isq_fp.push(tail as u32);
                    self.isq_fp_wake.push(0);
                    self.issue_wake[IW_FP] = 0;
                }
                _ => {
                    self.activity.isq_int_inserts += 1;
                    self.isq_int.push(tail as u32);
                    self.isq_int_wake.push(0);
                    self.issue_wake[IW_INT] = 0;
                }
            }

            if op.class.is_branch() {
                self.activity.bpred_lookups += 1;
                if !op.predicted_correctly {
                    self.waiting_branch = Some(Dep {
                        slot: tail as u32,
                        seq,
                    });
                    return; // younger ops are wrong-path until resolve
                }
            }
        }
    }

    /// Frozen reference dispatch (verbatim seed implementation); see
    /// [`Core::reference_tick`].
    fn ref_dispatch(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) {
        // Unresolved mispredicted branch: frontend fetches the wrong path;
        // no correct-path instructions enter until resolve + penalty.
        if let Some(dep) = self.waiting_branch {
            let slot = self.rob.get(dep.slot as usize);
            let resolved = slot.seq != dep.seq || slot.ready_at <= now;
            if resolved {
                let resolve_time = if slot.seq == dep.seq { slot.ready_at } else { now };
                self.redirect_until =
                    resolve_time.max(now) + self.cfg.mispredict_penalty as u64;
                self.waiting_branch = None;
            } else {
                self.stats.redirect_stall_cycles += 1;
                return;
            }
        }
        if self.redirect_until > now {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        if self.fetch_ready_at > now {
            self.stats.icache_stall_cycles += 1;
            return;
        }

        for _ in 0..self.cfg.dispatch_width {
            // Refill the peek buffer.
            if self.pending.is_none() {
                self.pending = Some(workload.next_op());
            }
            let op = *self.pending.as_ref().expect("just filled");

            // Instruction-cache access on line crossing.
            let line = op.pc >> 6;
            if line != self.last_fetch_line {
                let lat = mem.access(self.core_id, AccessKind::Ifetch, op.pc, now);
                self.activity.icache_accesses += 1;
                self.last_fetch_line = line;
                if lat > mem.config().l1_latency {
                    // Miss: frontend refills; retry once the line arrives.
                    self.fetch_ready_at = now + lat as u64;
                    self.stats.icache_stall_cycles += 1;
                    return;
                }
            }

            // Structural hazards.
            if self.rob_len == self.rob.cap() {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let dst_fp = op.effective_dst().map(|r| r.is_fp());
            match dst_fp {
                Some(true) if self.fp_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                Some(false) if self.int_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                _ => {}
            }
            match op.class {
                OpClass::Load => {
                    if self.loads.len() >= self.cfg.lsq_loads as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                OpClass::Store => {
                    if self.stores.len() >= self.cfg.lsq_stores as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                c if c.is_fp() => {
                    if self.isq_fp.len() >= self.cfg.fp_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
                _ => {
                    if self.isq_int.len() >= self.cfg.int_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
            }

            // All clear: allocate and rename.
            let seq = self.next_seq;
            self.next_seq += 1;
            let tail = (self.rob_head + self.rob_len) % self.rob.cap();

            let dep_of = |r: Option<ArchReg>, lw: &[Dep]| -> Dep {
                match r {
                    Some(r) if !r.is_zero() => lw[r.flat_index()],
                    _ => Dep::default(),
                }
            };
            let src1 = dep_of(op.src1, &self.last_writer);
            let src2 = dep_of(op.src2, &self.last_writer);

            self.rob.set(
                tail,
                RobSlot {
                    seq,
                    class: op.class,
                    dispatched_at: now,
                    ready_at: NOT_READY,
                    src1,
                    src2,
                    dst_fp,
                    addr: op.addr,
                    mispredicted: op.class.is_branch() && !op.predicted_correctly,
                },
            );
            self.rob_len += 1;
            self.pending = None;

            if let Some(dst) = op.effective_dst() {
                self.last_writer[dst.flat_index()] = Dep {
                    slot: tail as u32,
                    seq,
                };
                if dst.is_fp() {
                    self.fp_free -= 1;
                } else {
                    self.int_free -= 1;
                }
            }

            self.activity.dispatches += 1;
            match op.class {
                OpClass::Load | OpClass::Store => {
                    self.activity.lsq_inserts += 1;
                    if op.class == OpClass::Load {
                        self.loads.push(tail as u32);
                    } else {
                        self.stores.push(tail as u32);
                    }
                }
                c if c.is_fp() => {
                    self.activity.isq_fp_inserts += 1;
                    self.isq_fp.push(tail as u32);
                }
                _ => {
                    self.activity.isq_int_inserts += 1;
                    self.isq_int.push(tail as u32);
                }
            }

            if op.class.is_branch() {
                self.activity.bpred_lookups += 1;
                if !op.predicted_correctly {
                    self.waiting_branch = Some(Dep {
                        slot: tail as u32,
                        seq,
                    });
                    return; // younger ops are wrong-path until resolve
                }
            }
        }
    }

    // --- Swap support --------------------------------------------------

    /// Squash all in-flight work: empties the ROB, queues, rename state,
    /// and functional units. Committed statistics are preserved. Used when
    /// a thread is migrated off this core; uncommitted trace ops are
    /// dropped (statistically irrelevant for a stochastic trace).
    pub fn flush_pipeline(&mut self) {
        self.rob.seq.fill(0);
        self.rob_head = 0;
        self.rob_len = 0;
        self.last_writer = [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS];
        self.int_free = self.cfg.int_rename_pool();
        self.fp_free = self.cfg.fp_rename_pool();
        self.isq_int.clear();
        self.isq_fp.clear();
        self.loads.clear();
        self.stores.clear();
        self.loads_unissued.clear();
        self.stores_unissued.clear();
        self.issue_wake = [0; 4];
        self.isq_int_wake.clear();
        self.isq_fp_wake.clear();
        self.loads_wake.clear();
        self.stores_wake.clear();
        self.isq_recheck = [NOT_READY; 4];
        for fu in &mut self.fus {
            fu.reset();
        }
        self.pending = None;
        self.waiting_branch = None;
        self.last_fetch_line = u64::MAX;
        // fetch_ready_at / redirect_until are wall-clock gates; the system
        // adds the swap overhead on top via `stall_until`.
    }

    /// Block the frontend until the given cycle (swap overhead).
    pub fn stall_until(&mut self, cycle: u64) {
        self.fetch_ready_at = self.fetch_ready_at.max(cycle);
        self.redirect_until = self.redirect_until.max(cycle);
    }

    /// Classify and snapshot the pipeline for the sampled profiler —
    /// occupancies, cumulative committed count, and the dominant stall
    /// cause at `now`. Pure observation: reads packed state the stages
    /// already maintain, mutates nothing, and is identical under either
    /// kernel path (it only touches architectural state both share).
    pub fn pipe_snapshot(&self, now: u64) -> PipeSnapshot {
        let stall = if self.rob_len == 0 {
            if self.fetch_ready_at > now || self.redirect_until > now {
                // Swap overhead, an L1I miss, or a branch redirect is
                // holding fetch while the window sits empty.
                StallCause::FrontendStall
            } else {
                StallCause::FrontendEmpty
            }
        } else {
            let h = self.rob_head;
            if self.rob.ready_at[h] <= now {
                StallCause::Committing
            } else if self.rob.class[h].is_mem() {
                StallCause::MemWait
            } else {
                StallCause::ExecWait
            }
        };
        PipeSnapshot {
            rob: self.rob_len as u32,
            isq_int: self.isq_int.len() as u32,
            isq_fp: self.isq_fp.len() as u32,
            lq: self.loads.len() as u32,
            sq: self.stores.len() as u32,
            committed: self.stats.committed.total(),
            issue_slots: (self.cfg.issue_width_int + self.cfg.issue_width_fp + 2) as u32,
            stall,
        }
    }

    // --- Skip-ahead fast path ------------------------------------------

    /// Earliest cycle `t >= now` at which `tick(t)` might do more than
    /// the quiescent no-op pattern that [`Core::fast_forward`] replicates
    /// (cycle/stall/wakeup accounting only: no commit, no issue, no
    /// dispatch, no memory access).
    ///
    /// The bound is conservative: ticking at the returned cycle may still
    /// turn out to be quiescent (e.g. an issue lost to a width conflict),
    /// which costs a real tick but never correctness. The bound is also
    /// *sound*: nothing can change state strictly before it, because
    /// every state transition in the pipeline is enumerated below.
    pub fn next_event_at_or_after(&self, now: u64) -> u64 {
        // A candidate at `now` means the very next tick may act; bail out
        // as soon as one appears. (Candidates strictly above `now` must
        // all be scanned: an early return on `now + 1` could hide a
        // different candidate at `now` later in the scan order.)
        let horizon = now;
        let mut best = u64::MAX;

        // 1. Commit: the head retires once its result is ready. A head
        //    with no result yet is covered by its own issue candidate.
        if self.rob_len > 0 {
            let r = self.rob.ready_at[self.rob_head];
            if r != NOT_READY {
                best = best.min(r.max(now));
                if best <= horizon {
                    return best;
                }
            }
        }

        // 2. Frontend.
        if let Some(dep) = self.waiting_branch {
            let i = dep.slot as usize;
            if self.rob.seq[i] != dep.seq {
                // Producer slot reused: resolves on the very next tick.
                return now;
            }
            let ready = self.rob.ready_at[i];
            if ready != NOT_READY {
                // Resolution must happen at exactly the ready cycle — the
                // redirect window is measured from it.
                best = best.min(ready.max(now));
                if best <= horizon {
                    return best;
                }
            }
            // Unissued branch: covered by its issue-queue candidate.
        } else {
            let gate = self.redirect_until.max(self.fetch_ready_at).max(now);
            let dispatch_blocked = match &self.pending {
                // An empty peek buffer means the next active cycle draws
                // from the workload and touches the I-cache: both are
                // unpredictable here, so the gate cycle is an event.
                None => false,
                // The pending op's I-cache access already happened when it
                // was buffered (`last_fetch_line` is set before the miss
                // check), so only the structural hazards remain, probed in
                // dispatch order. Occupancies cannot change during a
                // quiescent region, so a blocked verdict holds until some
                // other (commit/issue) event fires first.
                Some(op) => {
                    if self.rob_len == self.rob.cap() {
                        true
                    } else {
                        let dst_fp = op.effective_dst().map(|r| r.is_fp());
                        let rename_blocked = match dst_fp {
                            Some(true) => self.fp_free == 0,
                            Some(false) => self.int_free == 0,
                            None => false,
                        };
                        rename_blocked
                            || match op.class {
                                OpClass::Load => {
                                    self.loads.len() >= self.cfg.lsq_loads as usize
                                }
                                OpClass::Store => {
                                    self.stores.len() >= self.cfg.lsq_stores as usize
                                }
                                c if c.is_fp() => {
                                    self.isq_fp.len() >= self.cfg.fp_isq as usize
                                }
                                _ => self.isq_int.len() >= self.cfg.int_isq as usize,
                            }
                    }
                }
            };
            if !dispatch_blocked {
                best = best.min(gate);
                if best <= horizon {
                    return best;
                }
            }
        }

        // 3. Issue-queue entries (all unissued by construction): an entry
        //    can first issue once it has aged a cycle, its sources are
        //    ready, and — for non-branches — some unit is free. A source
        //    produced by an op that has itself not issued yet reads as
        //    "never" here; that producer's own candidate covers it, and
        //    the chain bottoms out at the ROB head.
        for queue in [&self.isq_int, &self.isq_fp] {
            for &slot_idx in queue.iter() {
                let s = slot_idx as usize;
                let class = self.rob.class[s];
                let mut t = (self.rob.dispatched_at[s] + 1)
                    .max(self.dep_event_time(self.rob.src1_slot[s], self.rob.src1_seq[s]))
                    .max(self.dep_event_time(self.rob.src2_slot[s], self.rob.src2_seq[s]));
                if !class.is_branch() {
                    t = t.max(self.fus[class.index()].earliest_free());
                }
                if t == u64::MAX {
                    continue;
                }
                best = best.min(t.max(now));
                if best <= horizon {
                    return best;
                }
            }
        }

        // 4. Unissued loads: sources ready, plus every older in-flight
        //    store to the same word resolved (for bypass or forwarding).
        for &slot_idx in &self.loads {
            let s = slot_idx as usize;
            if self.rob.ready_at[s] != NOT_READY {
                continue; // issued: covered by the commit candidate
            }
            let mut t = (self.rob.dispatched_at[s] + 1)
                .max(self.dep_event_time(self.rob.src1_slot[s], self.rob.src1_seq[s]))
                .max(self.dep_event_time(self.rob.src2_slot[s], self.rob.src2_seq[s]));
            let seq = self.rob.seq[s];
            let word = self.rob.addr[s] >> 3;
            for &st_idx in &self.stores {
                let st = st_idx as usize;
                if self.rob.seq[st] < seq && self.rob.addr[st] >> 3 == word {
                    t = t.max(self.rob.ready_at[st]); // NOT_READY = never (see above)
                }
            }
            if t == u64::MAX {
                continue;
            }
            best = best.min(t.max(now));
            if best <= horizon {
                return best;
            }
        }

        // 5. Unissued stores: address/data generation needs only sources.
        for &slot_idx in &self.stores {
            let s = slot_idx as usize;
            if self.rob.ready_at[s] != NOT_READY {
                continue;
            }
            let t = (self.rob.dispatched_at[s] + 1)
                .max(self.dep_event_time(self.rob.src1_slot[s], self.rob.src1_seq[s]))
                .max(self.dep_event_time(self.rob.src2_slot[s], self.rob.src2_seq[s]));
            if t == u64::MAX {
                continue;
            }
            best = best.min(t.max(now));
            if best <= horizon {
                return best;
            }
        }

        best
    }

    /// When the value behind `dep` becomes readable: immediately for no
    /// dependency or a committed producer, at `ready_at` for an issued
    /// producer, "never" (`u64::MAX`) for an unissued one — whose own
    /// issue is a separate event candidate.
    #[inline]
    fn dep_event_time(&self, dep_slot: u32, dep_seq: u64) -> u64 {
        if dep_seq == 0 {
            return 0;
        }
        let i = dep_slot as usize;
        if self.rob.seq[i] != dep_seq {
            return 0; // producer committed
        }
        self.rob.ready_at[i]
    }

    /// Replicate `n` consecutive quiescent ticks covering cycles
    /// `from .. from + n` in O(1): exactly the accounting `tick` performs
    /// on a cycle where nothing commits, issues, or dispatches.
    ///
    /// Only valid when `from + n <= self.next_event_at_or_after(from)` —
    /// the runner guarantees this before calling.
    pub fn fast_forward(&mut self, from: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.cycles += n;
        self.activity.cycles += n;
        // Queue occupancies are frozen across a quiescent region, so the
        // per-cycle CAM wakeup accounting is a multiplication.
        self.activity.isq_int_wakeups += n * self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += n * self.isq_fp.len() as u64;

        // Dispatch-stage stall accounting, mirroring `dispatch`'s gate
        // order. An unresolved mispredicted branch charges every cycle to
        // the redirect stall; otherwise the redirect window covers the
        // leading cycles, the I-cache refill the next ones, and any
        // remainder is an active frontend blocked on the same structural
        // hazard every cycle.
        if self.waiting_branch.is_some() {
            self.stats.redirect_stall_cycles += n;
            return;
        }
        let n_redirect = self.redirect_until.saturating_sub(from).min(n);
        let n_icache = self
            .fetch_ready_at
            .saturating_sub(from)
            .min(n)
            .saturating_sub(n_redirect);
        let n_structural = n - n_redirect - n_icache;
        self.stats.redirect_stall_cycles += n_redirect;
        self.stats.icache_stall_cycles += n_icache;
        if n_structural > 0 {
            let op = self
                .pending
                .as_ref()
                .expect("active quiescent frontend must hold a pending op");
            if self.rob_len == self.rob.cap() {
                self.stats.rob_full_stalls += n_structural;
            } else {
                let dst_fp = op.effective_dst().map(|r| r.is_fp());
                let rename_blocked = match dst_fp {
                    Some(true) => self.fp_free == 0,
                    Some(false) => self.int_free == 0,
                    None => false,
                };
                if rename_blocked {
                    self.stats.rename_stalls += n_structural;
                } else {
                    match op.class {
                        OpClass::Load | OpClass::Store => {
                            self.stats.lsq_full_stalls += n_structural
                        }
                        _ => self.stats.isq_full_stalls += n_structural,
                    }
                }
            }
        }
    }

    /// FNV-1a digest over the complete microarchitectural state —
    /// everything `tick` reads or writes except the `stats`/`activity`
    /// counters (those are compared directly via `PartialEq` in the
    /// differential tests). Two cores with equal digests behave
    /// identically from here on given the same inputs.
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut put = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        let dep_words = |d: Dep| (d.slot as u64, d.seq);

        put(self.rob_head as u64);
        put(self.rob_len as u64);
        put(self.next_seq);
        // Slot iteration in index order over the packed columns, with the
        // same field order and `dst_fp` encoding as the original
        // array-of-structs digest (`DST_*` matches the old 0/1/2 map).
        for i in 0..self.rob.cap() {
            let seq = self.rob.seq[i];
            if seq == 0 {
                continue; // freed slots carry no future-visible state
            }
            put(seq);
            put(self.rob.class[i].index() as u64);
            put(self.rob.dispatched_at[i]);
            put(self.rob.ready_at[i]);
            put(self.rob.src1_slot[i] as u64);
            put(self.rob.src1_seq[i]);
            put(self.rob.src2_slot[i] as u64);
            put(self.rob.src2_seq[i]);
            put(self.rob.dst_fp[i] as u64);
            put(self.rob.addr[i]);
            put(self.rob.mispredicted[i] as u64);
        }
        for d in &self.last_writer {
            let (a, b) = dep_words(*d);
            put(a);
            put(b);
        }
        put(self.int_free as u64);
        put(self.fp_free as u64);
        for queue in [&self.isq_int, &self.isq_fp, &self.loads, &self.stores] {
            put(queue.len() as u64);
            for &i in queue.iter() {
                put(i as u64);
            }
        }
        for fu in &self.fus {
            for &f in fu.free_at() {
                put(f);
            }
        }
        match &self.pending {
            None => put(0),
            Some(op) => {
                put(1);
                put(op.pc);
                put(op.class.index() as u64);
                put(op.addr);
                put(op.size as u64);
                put(op.predicted_correctly as u64);
                let reg = |r: Option<ArchReg>| r.map_or(0, |r| r.flat_index() as u64 + 1);
                put(reg(op.src1));
                put(reg(op.src2));
                put(reg(op.dst));
            }
        }
        put(self.fetch_ready_at);
        put(self.last_fetch_line);
        match self.waiting_branch {
            None => put(0),
            Some(d) => {
                put(1);
                let (a, b) = dep_words(d);
                put(a);
                put(b);
            }
        }
        put(self.redirect_until);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsched_mem::MemConfig;

    /// Cycles through a fixed op vector forever.
    struct VecWorkload {
        ops: Vec<MicroOp>,
        i: usize,
    }

    impl VecWorkload {
        fn new(ops: Vec<MicroOp>) -> Self {
            assert!(!ops.is_empty());
            VecWorkload { ops, i: 0 }
        }
    }

    impl Workload for VecWorkload {
        fn name(&self) -> &str {
            "vec"
        }
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.i % self.ops.len()];
            self.i += 1;
            op
        }
        fn current_phase(&self) -> usize {
            0
        }
    }

    fn run(core: &mut Core, w: &mut dyn Workload, mem: &mut MemSystem, cycles: u64) {
        for now in 0..cycles {
            core.tick(now, w, mem);
        }
    }

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::default(), 2)
    }

    /// `n` independent ops of a class, each writing a distinct register.
    fn independent(class: OpClass, n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                let dst = if class.is_fp() {
                    ArchReg::Fp((i % 16) as u8)
                } else {
                    ArchReg::Int(1 + (i % 16) as u8)
                };
                let mut op = MicroOp::arith(class, None, None, Some(dst));
                op.pc = 4 * i as u64;
                op
            })
            .collect()
    }

    /// A serial dependency chain on a single register.
    fn chain(class: OpClass) -> Vec<MicroOp> {
        let reg = if class.is_fp() {
            ArchReg::Fp(1)
        } else {
            ArchReg::Int(1)
        };
        vec![MicroOp::arith(class, Some(reg), None, Some(reg))]
    }

    #[test]
    fn int_stream_fast_on_int_core_slow_on_fp_core() {
        let mut m1 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut int_core, &mut w, &mut m1, 20_000);
        let ipc_int = int_core.stats.ipc();

        let mut m2 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut fp_core, &mut w, &mut m2, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        assert!(
            ipc_int > 1.5,
            "INT core should near dispatch-bound IPC on int stream, got {ipc_int}"
        );
        assert!(
            ipc_fp < 0.6,
            "FP core's 1-unit 2-cyc NP int ALU caps at 0.5, got {ipc_fp}"
        );
    }

    #[test]
    fn fp_stream_fast_on_fp_core_slow_on_int_core() {
        let mut m1 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut fp_core, &mut w, &mut m1, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        let mut m2 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut int_core, &mut w, &mut m2, 20_000);
        let ipc_int = int_core.stats.ipc();

        assert!(ipc_fp > 1.5, "FP core on fp stream: got {ipc_fp}");
        assert!(
            ipc_int < 0.3,
            "INT core's 1-unit 4-cyc NP fp ALU caps at 0.25, got {ipc_int}"
        );
    }

    #[test]
    fn dependency_chain_is_latency_bound() {
        // FP ALU chain on the FP core: pipelined latency-4 unit => one
        // result every 4 cycles => IPC ~= 0.25.
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(chain(OpClass::FpAlu));
        run(&mut c, &mut w, &mut m, 20_000);
        let ipc = c.stats.ipc();
        assert!(
            (ipc - 0.25).abs() < 0.05,
            "chain IPC should approach 1/latency, got {ipc}"
        );
    }

    #[test]
    fn independent_wider_than_chain() {
        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(independent(OpClass::IntMul, 32));
        run(&mut c1, &mut w1, &mut m1, 10_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(chain(OpClass::IntMul));
        run(&mut c2, &mut w2, &mut m2, 10_000);

        assert!(
            c1.stats.ipc() > 2.0 * c2.stats.ipc(),
            "ILP must raise throughput: {} vs {}",
            c1.stats.ipc(),
            c2.stats.ipc()
        );
    }

    #[test]
    fn mispredicted_branches_stall_the_frontend() {
        let good: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), true)))
            .collect();
        let bad: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), false)))
            .collect();

        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(good);
        run(&mut c1, &mut w1, &mut m1, 20_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(bad);
        run(&mut c2, &mut w2, &mut m2, 20_000);

        assert!(c2.stats.ipc() < 0.7 * c1.stats.ipc());
        assert!(c2.stats.redirect_stall_cycles > 0);
        assert!(c2.stats.mispredicts > 0);
        assert_eq!(c1.stats.mispredicts, 0);
    }

    #[test]
    fn load_latency_and_store_forwarding() {
        // Load-dependent chain over one cached address: each iteration is
        // load (L1 hit, 2 cyc) -> dependent alu.
        let ops = vec![
            MicroOp::load(0x100, 8, None, ArchReg::Int(2)),
            MicroOp::arith(OpClass::IntAlu, Some(ArchReg::Int(2)), None, Some(ArchReg::Int(3))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 10_000);
        assert!(c.stats.committed.count(OpClass::Load) > 1000);

        // Store followed by a load of the same word: forwarding keeps the
        // load off the cache after the first iteration's allocations.
        let fwd_ops = vec![
            MicroOp::store(0x200, 8, None, ArchReg::Int(4)),
            MicroOp::load(0x200, 8, None, ArchReg::Int(5)),
        ];
        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(fwd_ops);
        run(&mut c2, &mut w2, &mut m2, 10_000);
        assert!(
            c2.stats.committed.total() > 4000,
            "forwarding pairs should flow at high rate, got {}",
            c2.stats.committed.total()
        );
    }

    #[test]
    fn loads_wait_for_older_unresolved_stores_to_same_word() {
        // A store whose data depends on a divide, then a load of the same
        // word: the load must wait and then *forward* from the store —
        // a forwarded load never accesses the D-cache. If the load
        // (incorrectly) bypassed the unresolved store, it would go to the
        // cache and the access count would be ~2 per triple.
        let ops = vec![
            MicroOp::arith(OpClass::IntDiv, Some(ArchReg::Int(1)), None, Some(ArchReg::Int(6))),
            MicroOp::store(0x300, 8, None, ArchReg::Int(6)),
            MicroOp::load(0x300, 8, None, ArchReg::Int(7)),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        // White-box: record each instruction's resolved ready_at by seq.
        use std::collections::HashMap;
        let mut ready: HashMap<u64, (OpClass, u64)> = HashMap::new();
        for now in 0..600 {
            c.tick(now, &mut w, &mut m);
            for i in 0..c.rob.cap() {
                if c.rob.seq[i] != 0 && c.rob.ready_at[i] != NOT_READY {
                    ready.insert(c.rob.seq[i], (c.rob.class[i], c.rob.ready_at[i]));
                }
            }
        }
        // First triple is seqs 1 (div), 2 (store), 3 (load).
        let div = ready[&1];
        let store = ready[&2];
        let load = ready[&3];
        assert_eq!(div.0, OpClass::IntDiv);
        assert_eq!(store.0, OpClass::Store);
        assert_eq!(load.0, OpClass::Load);
        assert!(
            store.1 >= div.1,
            "store data depends on the divide: {} vs {}",
            store.1,
            div.1
        );
        assert!(
            load.1 > store.1,
            "load of the same word must not complete before the store: {} vs {}",
            load.1,
            store.1
        );
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Code footprint far beyond the 4KB L1I: every line access misses.
        let ops: Vec<MicroOp> = (0..4096)
            .map(|i| {
                let mut op =
                    MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1 + (i % 16) as u8)));
                op.pc = (i as u64) * 64 * 131; // jump lines, 512KB+ footprint
                op
            })
            .collect();
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 20_000);
        assert!(c.stats.icache_stall_cycles > 5_000);
        assert!(c.stats.ipc() < 0.5);
    }

    #[test]
    fn rename_pool_pressure_stalls_dispatch() {
        // FP core has only 16 int rename regs: a burst of int writers with
        // a long divide at the head keeps them occupied.
        let mut ops = vec![MicroOp::arith(
            OpClass::IntDiv,
            Some(ArchReg::Int(1)),
            None,
            Some(ArchReg::Int(2)),
        )];
        for i in 0..40 {
            ops.push(MicroOp::arith(
                OpClass::IntAlu,
                Some(ArchReg::Int(2)), // all depend on the divide
                None,
                Some(ArchReg::Int(3 + (i % 20) as u8)),
            ));
        }
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 5_000);
        assert!(
            c.stats.rename_stalls > 0,
            "16-entry int rename pool must saturate"
        );
    }

    #[test]
    fn flush_pipeline_discards_inflight_and_preserves_stats() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        let committed_before = c.stats.committed.total();
        assert!(c.rob_occupancy() > 0);
        c.flush_pipeline();
        assert_eq!(c.rob_occupancy(), 0);
        assert_eq!(c.stats.committed.total(), committed_before);
        // Core keeps executing correctly after the flush.
        for now in 1000..2000 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > committed_before);
    }

    #[test]
    fn stall_until_blocks_frontend() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        c.stall_until(500);
        for now in 0..500 {
            c.tick(now, &mut w, &mut m);
        }
        assert_eq!(c.stats.committed.total(), 0, "stalled core commits nothing");
        for now in 500..1500 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > 0);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        assert!(c.activity.dispatches > 0);
        assert!(c.activity.commits > 0);
        assert!(c.activity.fu_ops[OpClass::IntAlu.index()] > 0);
        assert!(c.activity.int_reg_writes > 0);
        assert_eq!(c.activity.cycles, 1000);
        let taken = c.activity.take();
        assert!(taken.commits > 0);
        assert_eq!(c.activity.commits, 0);
    }

    #[test]
    fn commit_is_in_order() {
        // A long FP divide followed by quick int ops: ints cannot commit
        // before the divide does (ROB order), so total commits are gated.
        let ops = vec![
            MicroOp::arith(OpClass::FpDiv, Some(ArchReg::Fp(1)), None, Some(ArchReg::Fp(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(2))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 2_000);
        // Serial FpDiv chain on a 12-cycle NP unit: ~12 cycles per triple.
        let triples = c.stats.committed.count(OpClass::FpDiv);
        assert!(triples > 0);
        let cycles_per_triple = 2000.0 / triples as f64;
        assert!(
            cycles_per_triple >= 11.0,
            "in-order commit must serialize on the divide: {cycles_per_triple}"
        );
    }
}
