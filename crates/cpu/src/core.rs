//! The out-of-order core pipeline.
//!
//! Stage order inside [`Core::tick`] is commit → issue → dispatch, the
//! usual reverse-pipeline processing that prevents same-cycle
//! flow-through: an instruction dispatched in cycle *t* is issueable from
//! *t+1*, and a result produced in cycle *t* wakes consumers from *t*
//! onward (bypass network assumed).

use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{AccessKind, MemSystem};
use ampsched_trace::Workload;

use crate::activity::ActivityCounters;
use crate::config::CoreConfig;
use crate::fu::FuPool;
use crate::stats::CoreStats;

/// Sentinel: result not yet produced.
const NOT_READY: u64 = u64::MAX;

/// A resolved data dependency: the producing ROB slot plus its sequence
/// number (slot reuse is detected by sequence mismatch, which implies the
/// producer has committed and the value is architecturally available).
#[derive(Debug, Clone, Copy, Default)]
struct Dep {
    slot: u32,
    seq: u64, // 0 = no dependency
}

#[derive(Debug, Clone, Copy)]
struct RobSlot {
    seq: u64, // 0 = empty slot
    class: OpClass,
    dispatched_at: u64,
    /// Cycle the result is available; `NOT_READY` until issued.
    ready_at: u64,
    src1: Dep,
    src2: Dep,
    /// Destination register file: `Some(true)` = FP, `Some(false)` = INT.
    dst_fp: Option<bool>,
    addr: u64,
    mispredicted: bool,
}

impl Default for RobSlot {
    fn default() -> Self {
        RobSlot {
            seq: 0,
            class: OpClass::IntAlu,
            dispatched_at: 0,
            ready_at: NOT_READY,
            src1: Dep::default(),
            src2: Dep::default(),
            dst_fp: None,
            addr: 0,
            mispredicted: false,
        }
    }
}

/// One out-of-order core executing a [`Workload`] stream.
pub struct Core {
    cfg: CoreConfig,
    core_id: usize,

    // Reorder buffer (ring).
    rob: Vec<RobSlot>,
    rob_head: usize,
    rob_len: usize,
    next_seq: u64,

    // Rename state: last writer of each architectural register.
    last_writer: [Dep; ampsched_isa::regs::NUM_ARCH_REGS],
    int_free: u16,
    fp_free: u16,

    // Scheduler queues: ROB slot indices in age order.
    isq_int: Vec<u32>,
    isq_fp: Vec<u32>,
    loads: Vec<u32>,
    stores: Vec<u32>,

    // Fast-path indices over `loads`/`stores`: the age-ordered subset
    // that has not issued yet, so the per-cycle issue scans skip entries
    // that already issued and are only waiting for data or commit.
    // Maintained by the fast path only (`dispatch`/`issue_loads`/
    // `issue_stores`); the frozen reference stages never read them, and
    // as derived state they are excluded from `state_digest`. A core must
    // be driven through one kernel path for its whole lifetime (both
    // runners guarantee this).
    loads_unissued: Vec<u32>,
    stores_unissued: Vec<u32>,

    // Functional units (six arithmetic classes).
    fus: [FuPool; 6],

    // Frontend state.
    pending: Option<MicroOp>,
    fetch_ready_at: u64,
    last_fetch_line: u64,
    waiting_branch: Option<Dep>,
    redirect_until: u64,

    /// Architectural statistics.
    pub stats: CoreStats,
    /// Power-model activity counters.
    pub activity: ActivityCounters,
}

impl Core {
    /// Build an idle core.
    pub fn new(cfg: CoreConfig, core_id: usize) -> Self {
        cfg.validate();
        let fus = [
            FuPool::new(cfg.fu[0]),
            FuPool::new(cfg.fu[1]),
            FuPool::new(cfg.fu[2]),
            FuPool::new(cfg.fu[3]),
            FuPool::new(cfg.fu[4]),
            FuPool::new(cfg.fu[5]),
        ];
        Core {
            rob: vec![RobSlot::default(); cfg.rob_size as usize],
            rob_head: 0,
            rob_len: 0,
            next_seq: 1,
            last_writer: [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS],
            int_free: cfg.int_rename_pool(),
            fp_free: cfg.fp_rename_pool(),
            isq_int: Vec::with_capacity(cfg.int_isq as usize),
            isq_fp: Vec::with_capacity(cfg.fp_isq as usize),
            loads: Vec::with_capacity(cfg.lsq_loads as usize),
            stores: Vec::with_capacity(cfg.lsq_stores as usize),
            loads_unissued: Vec::with_capacity(cfg.lsq_loads as usize),
            stores_unissued: Vec::with_capacity(cfg.lsq_stores as usize),
            fus,
            pending: None,
            fetch_ready_at: 0,
            last_fetch_line: u64::MAX,
            waiting_branch: None,
            redirect_until: 0,
            stats: CoreStats::default(),
            activity: ActivityCounters::new(),
            cfg,
            core_id,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Core index within the system (selects L1s in the [`MemSystem`]).
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Occupied ROB entries (diagnostics/tests).
    pub fn rob_occupancy(&self) -> usize {
        self.rob_len
    }

    #[inline]
    fn dep_ready(&self, dep: Dep, now: u64) -> bool {
        if dep.seq == 0 {
            return true;
        }
        let slot = &self.rob[dep.slot as usize];
        // Slot reused or freed => producer committed => value available.
        slot.seq != dep.seq || slot.ready_at <= now
    }

    #[inline]
    fn srcs_ready(&self, slot: &RobSlot, now: u64) -> bool {
        self.dep_ready(slot.src1, now) && self.dep_ready(slot.src2, now)
    }

    /// Advance the core by one cycle. Returns the number of instructions
    /// committed this cycle.
    ///
    /// This is the *fast path*: its commit/issue/dispatch stages are
    /// restructured for wall-clock speed (queue compaction instead of
    /// repeated `Vec::remove`, field loads instead of whole-slot copies,
    /// hoisted structural limits, inlined activity accounting) but must
    /// stay cycle- and counter-identical to
    /// [`Core::reference_tick`]. The differential suite in
    /// `crates/cpu/tests/differential.rs` enforces that equivalence.
    pub fn tick(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) -> u32 {
        self.stats.cycles += 1;
        self.activity.cycles += 1;
        let committed = self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch(now, workload, mem);
        committed
    }

    /// Advance the core by one cycle through the frozen *reference path*.
    ///
    /// The `ref_*` stage bodies below are the seed simulator's original
    /// commit/issue/dispatch implementations, kept verbatim as the
    /// bit-exactness baseline for [`Core::tick`] and
    /// [`Core::fast_forward`]. Do not
    /// optimize them; optimize `tick` and prove equivalence against this.
    pub fn reference_tick(
        &mut self,
        now: u64,
        workload: &mut dyn Workload,
        mem: &mut MemSystem,
    ) -> u32 {
        self.stats.cycles += 1;
        self.activity.cycles += 1;
        let committed = self.ref_commit(now, mem);
        self.ref_issue(now, mem);
        self.ref_dispatch(now, workload, mem);
        committed
    }

    // --- Commit ------------------------------------------------------

    fn commit(&mut self, now: u64, mem: &mut MemSystem) -> u32 {
        let width = self.cfg.commit_width as u32;
        let rob_cap = self.rob.len();
        let mut n = 0u32;
        // Batched retirement accounting: load only the head fields needed
        // (not the whole slot), hoist the width/capacity lookups out of
        // the loop, and roll the per-op bookkeeping into one pass.
        while n < width && self.rob_len > 0 {
            let idx = self.rob_head;
            let (ready_at, class, dst_fp, addr, mispredicted) = {
                let s = &self.rob[idx];
                (s.ready_at, s.class, s.dst_fp, s.addr, s.mispredicted)
            };
            if ready_at > now {
                break;
            }
            // Retire.
            match class {
                OpClass::Store => {
                    // Write-back through the store buffer: update cache
                    // state; latency is off the critical path.
                    let _ = mem.access(self.core_id, AccessKind::Store, addr, now);
                    self.activity.dcache_accesses += 1;
                    // Free the store-queue entry (the head is the oldest
                    // store, so this is the front in the common case).
                    if let Some(pos) = self.stores.iter().position(|&s| s == idx as u32) {
                        self.stores.remove(pos);
                    }
                }
                OpClass::Load => {
                    if let Some(pos) = self.loads.iter().position(|&s| s == idx as u32) {
                        self.loads.remove(pos);
                    }
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                _ => {}
            }
            if let Some(fp) = dst_fp {
                if fp {
                    self.fp_free += 1;
                } else {
                    self.int_free += 1;
                }
            }
            self.stats.committed.record(class);
            self.activity.commits += 1;
            self.rob[idx].seq = 0;
            self.rob_head = (idx + 1) % rob_cap;
            self.rob_len -= 1;
            n += 1;
        }
        n
    }

    /// Reference copy of the seed simulator's commit stage (frozen).
    fn ref_commit(&mut self, now: u64, mem: &mut MemSystem) -> u32 {
        let mut n = 0u32;
        while n < self.cfg.commit_width as u32 && self.rob_len > 0 {
            let idx = self.rob_head;
            let slot = self.rob[idx];
            if slot.ready_at > now {
                break;
            }
            match slot.class {
                OpClass::Store => {
                    let _ = mem.access(self.core_id, AccessKind::Store, slot.addr, now);
                    self.activity.dcache_accesses += 1;
                    if let Some(pos) = self.stores.iter().position(|&s| s == idx as u32) {
                        self.stores.remove(pos);
                    }
                }
                OpClass::Load => {
                    if let Some(pos) = self.loads.iter().position(|&s| s == idx as u32) {
                        self.loads.remove(pos);
                    }
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if slot.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                _ => {}
            }
            if let Some(fp) = slot.dst_fp {
                if fp {
                    self.fp_free += 1;
                } else {
                    self.int_free += 1;
                }
            }
            self.stats.committed.record(slot.class);
            self.activity.commits += 1;
            self.rob[idx].seq = 0;
            self.rob_head = (self.rob_head + 1) % self.rob.len();
            self.rob_len -= 1;
            n += 1;
        }
        n
    }

    // --- Issue -------------------------------------------------------

    fn issue(&mut self, now: u64, mem: &mut MemSystem) {
        // CAM wakeup energy ∝ queue occupancy.
        self.activity.isq_int_wakeups += self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += self.isq_fp.len() as u64;

        self.issue_arith_queue(false, now);
        self.issue_arith_queue(true, now);
        self.issue_loads(now, mem);
        self.issue_stores(now);
    }

    /// Reference copy of the seed simulator's issue stage (frozen).
    fn ref_issue(&mut self, now: u64, mem: &mut MemSystem) {
        self.activity.isq_int_wakeups += self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += self.isq_fp.len() as u64;

        self.ref_issue_arith_queue(false, now);
        self.ref_issue_arith_queue(true, now);
        self.ref_issue_loads(now, mem);
        self.ref_issue_stores(now);
    }

    fn issue_arith_queue(&mut self, fp: bool, now: u64) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        } as usize;
        // Single compaction pass over the queue instead of `Vec::remove`
        // per issued op: surviving entries are written back in place, so
        // age order is preserved with no quadratic shifting. A failed
        // `try_issue` does not mutate the pool, so attempting entries in
        // the same order yields the same grants as the reference.
        let mut queue = std::mem::take(if fp { &mut self.isq_fp } else { &mut self.isq_int });
        let mut issued = 0usize;
        let mut kept = 0usize;
        let mut i = 0usize;
        while i < queue.len() && issued < width {
            let slot_idx = queue[i] as usize;
            let mut keep = true;
            {
                let (dispatched_at, src1, src2, class, dst_fp) = {
                    let s = &self.rob[slot_idx];
                    (s.dispatched_at, s.src1, s.src2, s.class, s.dst_fp)
                };
                if dispatched_at < now
                    && self.dep_ready(src1, now)
                    && self.dep_ready(src2, now)
                {
                    let done_at = if class.is_branch() {
                        // Dedicated branch/condition unit, 1-cycle latency.
                        Some(now + 1)
                    } else {
                        self.fus[class.index()].try_issue(now)
                    };
                    if let Some(done_at) = done_at {
                        self.rob[slot_idx].ready_at = done_at;
                        // count_issue, inlined from the captured fields.
                        self.activity.fu_ops[class.index()] += 1;
                        let reads = (src1.seq != 0) as u64 + (src2.seq != 0) as u64;
                        if class.is_fp() {
                            self.activity.fp_reg_reads += reads;
                        } else {
                            self.activity.int_reg_reads += reads;
                        }
                        match dst_fp {
                            Some(true) => self.activity.fp_reg_writes += 1,
                            Some(false) => self.activity.int_reg_writes += 1,
                            None => {}
                        }
                        issued += 1;
                        keep = false;
                    }
                }
            }
            if keep {
                queue[kept] = queue[i];
                kept += 1;
            }
            i += 1;
        }
        // Issue width exhausted: the rest of the queue survives untouched,
        // so bulk-move it instead of inspecting each entry.
        if i < queue.len() {
            queue.copy_within(i.., kept);
            kept += queue.len() - i;
        }
        queue.truncate(kept);
        if fp {
            self.isq_fp = queue;
        } else {
            self.isq_int = queue;
        }
    }

    /// Reference copy of the seed simulator's arithmetic issue (frozen).
    fn ref_issue_arith_queue(&mut self, fp: bool, now: u64) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        } as usize;
        let mut issued = 0usize;
        let mut i = 0usize;
        while i < if fp { self.isq_fp.len() } else { self.isq_int.len() } {
            if issued >= width {
                break;
            }
            let slot_idx = if fp { self.isq_fp[i] } else { self.isq_int[i] } as usize;
            let slot = self.rob[slot_idx];
            let eligible = slot.dispatched_at < now && self.srcs_ready(&slot, now);
            if eligible {
                let done_at = if slot.class.is_branch() {
                    // Dedicated branch/condition unit, 1-cycle latency.
                    Some(now + 1)
                } else {
                    self.fus[slot.class.index()].try_issue(now)
                };
                if let Some(done_at) = done_at {
                    self.rob[slot_idx].ready_at = done_at;
                    self.count_issue(&slot);
                    if fp {
                        self.isq_fp.remove(i);
                    } else {
                        self.isq_int.remove(i);
                    }
                    issued += 1;
                    continue; // do not advance i: element removed
                }
            }
            i += 1;
        }
    }

    fn count_issue(&mut self, slot: &RobSlot) {
        self.activity.fu_ops[slot.class.index()] += 1;
        // Register file reads for each real source, writes for the dest.
        let fp_domain = slot.class.is_fp();
        let reads = (slot.src1.seq != 0) as u64 + (slot.src2.seq != 0) as u64;
        if fp_domain {
            self.activity.fp_reg_reads += reads;
        } else {
            self.activity.int_reg_reads += reads;
        }
        match slot.dst_fp {
            Some(true) => self.activity.fp_reg_writes += 1,
            Some(false) => self.activity.int_reg_writes += 1,
            None => {}
        }
    }

    fn issue_loads(&mut self, now: u64, mem: &mut MemSystem) {
        // One load port: the oldest ready load issues. Entries stay in
        // `loads` until commit (they hold the LQ slot), but the per-cycle
        // scan walks only `loads_unissued` — entries that issued already
        // are just waiting for data or commit and can never issue again.
        // Fast path: load only the fields needed, skip the store scan
        // when the store queue is empty, and inline the issue accounting
        // (loads use the integer datapath and never a branch/FP unit).
        for i in 0..self.loads_unissued.len() {
            let slot_idx = self.loads_unissued[i] as usize;
            let (dispatched_at, seq, src1, src2, addr, dst_fp) = {
                let s = &self.rob[slot_idx];
                (s.dispatched_at, s.seq, s.src1, s.src2, s.addr, s.dst_fp)
            };
            if dispatched_at >= now || !self.dep_ready(src1, now) || !self.dep_ready(src2, now) {
                continue;
            }
            // Disambiguation against older, in-flight stores to the same
            // 8-byte word (addresses are exact in a trace-driven model).
            let mut blocked = false;
            let mut forward = false;
            if !self.stores.is_empty() {
                let word = addr >> 3;
                for &st_idx in &self.stores {
                    let st = &self.rob[st_idx as usize];
                    if st.seq >= seq {
                        continue; // younger store: irrelevant
                    }
                    if st.addr >> 3 == word {
                        if st.ready_at == NOT_READY || st.ready_at > now {
                            blocked = true; // store data not ready yet
                        } else {
                            forward = true;
                        }
                    }
                }
            }
            if blocked {
                continue;
            }
            let done_at = if forward {
                now + 1 // store-to-load forwarding
            } else {
                let lat = mem.access(self.core_id, AccessKind::Load, addr, now);
                self.activity.dcache_accesses += 1;
                now + lat as u64
            };
            self.rob[slot_idx].ready_at = done_at;
            // count_issue, inlined: Load is integer-domain, non-FP dest
            // unless the load targets an FP register.
            self.activity.fu_ops[OpClass::Load.index()] += 1;
            self.activity.int_reg_reads +=
                (src1.seq != 0) as u64 + (src2.seq != 0) as u64;
            match dst_fp {
                Some(true) => self.activity.fp_reg_writes += 1,
                Some(false) => self.activity.int_reg_writes += 1,
                None => {}
            }
            self.loads_unissued.remove(i);
            break;
        }
    }

    /// Reference copy of the seed simulator's load issue (frozen).
    fn ref_issue_loads(&mut self, now: u64, mem: &mut MemSystem) {
        for i in 0..self.loads.len() {
            let slot_idx = self.loads[i];
            let slot = self.rob[slot_idx as usize];
            if slot.ready_at != NOT_READY {
                continue; // already issued, waiting for data
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            let mut blocked = false;
            let mut forward_from: Option<u64> = None;
            for &st_idx in &self.stores {
                let st = self.rob[st_idx as usize];
                if st.seq >= slot.seq {
                    continue; // younger store: irrelevant
                }
                if st.addr >> 3 == slot.addr >> 3 {
                    if st.ready_at == NOT_READY || st.ready_at > now {
                        blocked = true; // store data not ready yet
                    } else {
                        forward_from = Some(st.ready_at);
                    }
                }
            }
            if blocked {
                continue;
            }
            let slot_idx = slot_idx as usize;
            let done_at = if forward_from.is_some() {
                now + 1 // store-to-load forwarding
            } else {
                let lat = mem.access(self.core_id, AccessKind::Load, slot.addr, now);
                self.activity.dcache_accesses += 1;
                now + lat as u64
            };
            self.rob[slot_idx].ready_at = done_at;
            let s = self.rob[slot_idx];
            self.count_issue(&s);
            break;
        }
    }

    fn issue_stores(&mut self, now: u64) {
        // One store port: compute address + capture data. Fast path:
        // walk only the unissued subset, with field loads plus inlined
        // accounting (stores are integer-domain and never have a
        // destination register).
        for i in 0..self.stores_unissued.len() {
            let slot_idx = self.stores_unissued[i] as usize;
            let (dispatched_at, src1, src2, dst_fp) = {
                let s = &self.rob[slot_idx];
                (s.dispatched_at, s.src1, s.src2, s.dst_fp)
            };
            if dispatched_at >= now || !self.dep_ready(src1, now) || !self.dep_ready(src2, now) {
                continue;
            }
            self.rob[slot_idx].ready_at = now + 1;
            self.activity.fu_ops[OpClass::Store.index()] += 1;
            self.activity.int_reg_reads +=
                (src1.seq != 0) as u64 + (src2.seq != 0) as u64;
            match dst_fp {
                Some(true) => self.activity.fp_reg_writes += 1,
                Some(false) => self.activity.int_reg_writes += 1,
                None => {}
            }
            self.stores_unissued.remove(i);
            break;
        }
    }

    /// Reference copy of the seed simulator's store issue (frozen).
    fn ref_issue_stores(&mut self, now: u64) {
        for &slot_idx in &self.stores {
            let slot = self.rob[slot_idx as usize];
            if slot.ready_at != NOT_READY {
                continue;
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            self.rob[slot_idx as usize].ready_at = now + 1;
            let s = self.rob[slot_idx as usize];
            self.count_issue(&s);
            break;
        }
    }

    // --- Dispatch ----------------------------------------------------

    fn dispatch(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) {
        // Unresolved mispredicted branch: frontend fetches the wrong path;
        // no correct-path instructions enter until resolve + penalty.
        if let Some(dep) = self.waiting_branch {
            let slot = &self.rob[dep.slot as usize];
            let resolved = slot.seq != dep.seq || slot.ready_at <= now;
            if resolved {
                let resolve_time = if slot.seq == dep.seq { slot.ready_at } else { now };
                self.redirect_until =
                    resolve_time.max(now) + self.cfg.mispredict_penalty as u64;
                self.waiting_branch = None;
            } else {
                self.stats.redirect_stall_cycles += 1;
                return;
            }
        }
        if self.redirect_until > now {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        if self.fetch_ready_at > now {
            self.stats.icache_stall_cycles += 1;
            return;
        }

        // Structural limits are fixed for the core's lifetime; hoist them
        // out of the per-slot loop so the hot path reads locals only.
        let width = self.cfg.dispatch_width;
        let rob_cap = self.rob.len();
        let lsq_loads = self.cfg.lsq_loads as usize;
        let lsq_stores = self.cfg.lsq_stores as usize;
        let fp_isq = self.cfg.fp_isq as usize;
        let int_isq = self.cfg.int_isq as usize;
        let l1_latency = mem.config().l1_latency;

        for _ in 0..width {
            // Refill the peek buffer.
            if self.pending.is_none() {
                self.pending = Some(workload.next_op());
            }
            let op = *self.pending.as_ref().expect("just filled");

            // Instruction-cache access on line crossing.
            let line = op.pc >> 6;
            if line != self.last_fetch_line {
                let lat = mem.access(self.core_id, AccessKind::Ifetch, op.pc, now);
                self.activity.icache_accesses += 1;
                self.last_fetch_line = line;
                if lat > l1_latency {
                    // Miss: frontend refills; retry once the line arrives.
                    self.fetch_ready_at = now + lat as u64;
                    self.stats.icache_stall_cycles += 1;
                    return;
                }
            }

            // Structural hazards.
            if self.rob_len == rob_cap {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let dst_fp = op.effective_dst().map(|r| r.is_fp());
            match dst_fp {
                Some(true) if self.fp_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                Some(false) if self.int_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                _ => {}
            }
            match op.class {
                OpClass::Load => {
                    if self.loads.len() >= lsq_loads {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                OpClass::Store => {
                    if self.stores.len() >= lsq_stores {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                c if c.is_fp() => {
                    if self.isq_fp.len() >= fp_isq {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
                _ => {
                    if self.isq_int.len() >= int_isq {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
            }

            // All clear: allocate and rename.
            let seq = self.next_seq;
            self.next_seq += 1;
            let tail = (self.rob_head + self.rob_len) % rob_cap;

            let dep_of = |r: Option<ArchReg>, lw: &[Dep]| -> Dep {
                match r {
                    Some(r) if !r.is_zero() => lw[r.flat_index()],
                    _ => Dep::default(),
                }
            };
            let src1 = dep_of(op.src1, &self.last_writer);
            let src2 = dep_of(op.src2, &self.last_writer);

            self.rob[tail] = RobSlot {
                seq,
                class: op.class,
                dispatched_at: now,
                ready_at: NOT_READY,
                src1,
                src2,
                dst_fp,
                addr: op.addr,
                mispredicted: op.class.is_branch() && !op.predicted_correctly,
            };
            self.rob_len += 1;
            self.pending = None;

            if let Some(dst) = op.effective_dst() {
                self.last_writer[dst.flat_index()] = Dep {
                    slot: tail as u32,
                    seq,
                };
                if dst.is_fp() {
                    self.fp_free -= 1;
                } else {
                    self.int_free -= 1;
                }
            }

            self.activity.dispatches += 1;
            match op.class {
                OpClass::Load | OpClass::Store => {
                    self.activity.lsq_inserts += 1;
                    if op.class == OpClass::Load {
                        self.loads.push(tail as u32);
                        self.loads_unissued.push(tail as u32);
                    } else {
                        self.stores.push(tail as u32);
                        self.stores_unissued.push(tail as u32);
                    }
                }
                c if c.is_fp() => {
                    self.activity.isq_fp_inserts += 1;
                    self.isq_fp.push(tail as u32);
                }
                _ => {
                    self.activity.isq_int_inserts += 1;
                    self.isq_int.push(tail as u32);
                }
            }

            if op.class.is_branch() {
                self.activity.bpred_lookups += 1;
                if !op.predicted_correctly {
                    self.waiting_branch = Some(Dep {
                        slot: tail as u32,
                        seq,
                    });
                    return; // younger ops are wrong-path until resolve
                }
            }
        }
    }

    /// Frozen reference dispatch (verbatim seed implementation); see
    /// [`Core::reference_tick`].
    fn ref_dispatch(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) {
        // Unresolved mispredicted branch: frontend fetches the wrong path;
        // no correct-path instructions enter until resolve + penalty.
        if let Some(dep) = self.waiting_branch {
            let slot = &self.rob[dep.slot as usize];
            let resolved = slot.seq != dep.seq || slot.ready_at <= now;
            if resolved {
                let resolve_time = if slot.seq == dep.seq { slot.ready_at } else { now };
                self.redirect_until =
                    resolve_time.max(now) + self.cfg.mispredict_penalty as u64;
                self.waiting_branch = None;
            } else {
                self.stats.redirect_stall_cycles += 1;
                return;
            }
        }
        if self.redirect_until > now {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        if self.fetch_ready_at > now {
            self.stats.icache_stall_cycles += 1;
            return;
        }

        for _ in 0..self.cfg.dispatch_width {
            // Refill the peek buffer.
            if self.pending.is_none() {
                self.pending = Some(workload.next_op());
            }
            let op = *self.pending.as_ref().expect("just filled");

            // Instruction-cache access on line crossing.
            let line = op.pc >> 6;
            if line != self.last_fetch_line {
                let lat = mem.access(self.core_id, AccessKind::Ifetch, op.pc, now);
                self.activity.icache_accesses += 1;
                self.last_fetch_line = line;
                if lat > mem.config().l1_latency {
                    // Miss: frontend refills; retry once the line arrives.
                    self.fetch_ready_at = now + lat as u64;
                    self.stats.icache_stall_cycles += 1;
                    return;
                }
            }

            // Structural hazards.
            if self.rob_len == self.rob.len() {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let dst_fp = op.effective_dst().map(|r| r.is_fp());
            match dst_fp {
                Some(true) if self.fp_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                Some(false) if self.int_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                _ => {}
            }
            match op.class {
                OpClass::Load => {
                    if self.loads.len() >= self.cfg.lsq_loads as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                OpClass::Store => {
                    if self.stores.len() >= self.cfg.lsq_stores as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                c if c.is_fp() => {
                    if self.isq_fp.len() >= self.cfg.fp_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
                _ => {
                    if self.isq_int.len() >= self.cfg.int_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
            }

            // All clear: allocate and rename.
            let seq = self.next_seq;
            self.next_seq += 1;
            let tail = (self.rob_head + self.rob_len) % self.rob.len();

            let dep_of = |r: Option<ArchReg>, lw: &[Dep]| -> Dep {
                match r {
                    Some(r) if !r.is_zero() => lw[r.flat_index()],
                    _ => Dep::default(),
                }
            };
            let src1 = dep_of(op.src1, &self.last_writer);
            let src2 = dep_of(op.src2, &self.last_writer);

            self.rob[tail] = RobSlot {
                seq,
                class: op.class,
                dispatched_at: now,
                ready_at: NOT_READY,
                src1,
                src2,
                dst_fp,
                addr: op.addr,
                mispredicted: op.class.is_branch() && !op.predicted_correctly,
            };
            self.rob_len += 1;
            self.pending = None;

            if let Some(dst) = op.effective_dst() {
                self.last_writer[dst.flat_index()] = Dep {
                    slot: tail as u32,
                    seq,
                };
                if dst.is_fp() {
                    self.fp_free -= 1;
                } else {
                    self.int_free -= 1;
                }
            }

            self.activity.dispatches += 1;
            match op.class {
                OpClass::Load | OpClass::Store => {
                    self.activity.lsq_inserts += 1;
                    if op.class == OpClass::Load {
                        self.loads.push(tail as u32);
                    } else {
                        self.stores.push(tail as u32);
                    }
                }
                c if c.is_fp() => {
                    self.activity.isq_fp_inserts += 1;
                    self.isq_fp.push(tail as u32);
                }
                _ => {
                    self.activity.isq_int_inserts += 1;
                    self.isq_int.push(tail as u32);
                }
            }

            if op.class.is_branch() {
                self.activity.bpred_lookups += 1;
                if !op.predicted_correctly {
                    self.waiting_branch = Some(Dep {
                        slot: tail as u32,
                        seq,
                    });
                    return; // younger ops are wrong-path until resolve
                }
            }
        }
    }

    // --- Swap support --------------------------------------------------

    /// Squash all in-flight work: empties the ROB, queues, rename state,
    /// and functional units. Committed statistics are preserved. Used when
    /// a thread is migrated off this core; uncommitted trace ops are
    /// dropped (statistically irrelevant for a stochastic trace).
    pub fn flush_pipeline(&mut self) {
        for s in &mut self.rob {
            s.seq = 0;
        }
        self.rob_head = 0;
        self.rob_len = 0;
        self.last_writer = [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS];
        self.int_free = self.cfg.int_rename_pool();
        self.fp_free = self.cfg.fp_rename_pool();
        self.isq_int.clear();
        self.isq_fp.clear();
        self.loads.clear();
        self.stores.clear();
        self.loads_unissued.clear();
        self.stores_unissued.clear();
        for fu in &mut self.fus {
            fu.reset();
        }
        self.pending = None;
        self.waiting_branch = None;
        self.last_fetch_line = u64::MAX;
        // fetch_ready_at / redirect_until are wall-clock gates; the system
        // adds the swap overhead on top via `stall_until`.
    }

    /// Block the frontend until the given cycle (swap overhead).
    pub fn stall_until(&mut self, cycle: u64) {
        self.fetch_ready_at = self.fetch_ready_at.max(cycle);
        self.redirect_until = self.redirect_until.max(cycle);
    }

    // --- Skip-ahead fast path ------------------------------------------

    /// Earliest cycle `t >= now` at which `tick(t)` might do more than
    /// the quiescent no-op pattern that [`Core::fast_forward`] replicates
    /// (cycle/stall/wakeup accounting only: no commit, no issue, no
    /// dispatch, no memory access).
    ///
    /// The bound is conservative: ticking at the returned cycle may still
    /// turn out to be quiescent (e.g. an issue lost to a width conflict),
    /// which costs a real tick but never correctness. The bound is also
    /// *sound*: nothing can change state strictly before it, because
    /// every state transition in the pipeline is enumerated below.
    pub fn next_event_at_or_after(&self, now: u64) -> u64 {
        // A candidate at `now` means the very next tick may act; bail out
        // as soon as one appears. (Candidates strictly above `now` must
        // all be scanned: an early return on `now + 1` could hide a
        // different candidate at `now` later in the scan order.)
        let horizon = now;
        let mut best = u64::MAX;

        // 1. Commit: the head retires once its result is ready. A head
        //    with no result yet is covered by its own issue candidate.
        if self.rob_len > 0 {
            let r = self.rob[self.rob_head].ready_at;
            if r != NOT_READY {
                best = best.min(r.max(now));
                if best <= horizon {
                    return best;
                }
            }
        }

        // 2. Frontend.
        if let Some(dep) = self.waiting_branch {
            let slot = &self.rob[dep.slot as usize];
            if slot.seq != dep.seq {
                // Producer slot reused: resolves on the very next tick.
                return now;
            }
            if slot.ready_at != NOT_READY {
                // Resolution must happen at exactly the ready cycle — the
                // redirect window is measured from it.
                best = best.min(slot.ready_at.max(now));
                if best <= horizon {
                    return best;
                }
            }
            // Unissued branch: covered by its issue-queue candidate.
        } else {
            let gate = self.redirect_until.max(self.fetch_ready_at).max(now);
            let dispatch_blocked = match &self.pending {
                // An empty peek buffer means the next active cycle draws
                // from the workload and touches the I-cache: both are
                // unpredictable here, so the gate cycle is an event.
                None => false,
                // The pending op's I-cache access already happened when it
                // was buffered (`last_fetch_line` is set before the miss
                // check), so only the structural hazards remain, probed in
                // dispatch order. Occupancies cannot change during a
                // quiescent region, so a blocked verdict holds until some
                // other (commit/issue) event fires first.
                Some(op) => {
                    if self.rob_len == self.rob.len() {
                        true
                    } else {
                        let dst_fp = op.effective_dst().map(|r| r.is_fp());
                        let rename_blocked = match dst_fp {
                            Some(true) => self.fp_free == 0,
                            Some(false) => self.int_free == 0,
                            None => false,
                        };
                        rename_blocked
                            || match op.class {
                                OpClass::Load => {
                                    self.loads.len() >= self.cfg.lsq_loads as usize
                                }
                                OpClass::Store => {
                                    self.stores.len() >= self.cfg.lsq_stores as usize
                                }
                                c if c.is_fp() => {
                                    self.isq_fp.len() >= self.cfg.fp_isq as usize
                                }
                                _ => self.isq_int.len() >= self.cfg.int_isq as usize,
                            }
                    }
                }
            };
            if !dispatch_blocked {
                best = best.min(gate);
                if best <= horizon {
                    return best;
                }
            }
        }

        // 3. Issue-queue entries (all unissued by construction): an entry
        //    can first issue once it has aged a cycle, its sources are
        //    ready, and — for non-branches — some unit is free. A source
        //    produced by an op that has itself not issued yet reads as
        //    "never" here; that producer's own candidate covers it, and
        //    the chain bottoms out at the ROB head.
        for queue in [&self.isq_int, &self.isq_fp] {
            for &slot_idx in queue.iter() {
                let s = &self.rob[slot_idx as usize];
                let mut t = (s.dispatched_at + 1)
                    .max(self.dep_event_time(s.src1))
                    .max(self.dep_event_time(s.src2));
                if !s.class.is_branch() {
                    t = t.max(self.fus[s.class.index()].earliest_free());
                }
                if t == u64::MAX {
                    continue;
                }
                best = best.min(t.max(now));
                if best <= horizon {
                    return best;
                }
            }
        }

        // 4. Unissued loads: sources ready, plus every older in-flight
        //    store to the same word resolved (for bypass or forwarding).
        for &slot_idx in &self.loads {
            let s = &self.rob[slot_idx as usize];
            if s.ready_at != NOT_READY {
                continue; // issued: covered by the commit candidate
            }
            let mut t = (s.dispatched_at + 1)
                .max(self.dep_event_time(s.src1))
                .max(self.dep_event_time(s.src2));
            for &st_idx in &self.stores {
                let st = &self.rob[st_idx as usize];
                if st.seq < s.seq && st.addr >> 3 == s.addr >> 3 {
                    t = t.max(st.ready_at); // NOT_READY = never (see above)
                }
            }
            if t == u64::MAX {
                continue;
            }
            best = best.min(t.max(now));
            if best <= horizon {
                return best;
            }
        }

        // 5. Unissued stores: address/data generation needs only sources.
        for &slot_idx in &self.stores {
            let s = &self.rob[slot_idx as usize];
            if s.ready_at != NOT_READY {
                continue;
            }
            let t = (s.dispatched_at + 1)
                .max(self.dep_event_time(s.src1))
                .max(self.dep_event_time(s.src2));
            if t == u64::MAX {
                continue;
            }
            best = best.min(t.max(now));
            if best <= horizon {
                return best;
            }
        }

        best
    }

    /// When the value behind `dep` becomes readable: immediately for no
    /// dependency or a committed producer, at `ready_at` for an issued
    /// producer, "never" (`u64::MAX`) for an unissued one — whose own
    /// issue is a separate event candidate.
    #[inline]
    fn dep_event_time(&self, dep: Dep) -> u64 {
        if dep.seq == 0 {
            return 0;
        }
        let slot = &self.rob[dep.slot as usize];
        if slot.seq != dep.seq {
            return 0; // producer committed
        }
        slot.ready_at
    }

    /// Replicate `n` consecutive quiescent ticks covering cycles
    /// `from .. from + n` in O(1): exactly the accounting `tick` performs
    /// on a cycle where nothing commits, issues, or dispatches.
    ///
    /// Only valid when `from + n <= self.next_event_at_or_after(from)` —
    /// the runner guarantees this before calling.
    pub fn fast_forward(&mut self, from: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.cycles += n;
        self.activity.cycles += n;
        // Queue occupancies are frozen across a quiescent region, so the
        // per-cycle CAM wakeup accounting is a multiplication.
        self.activity.isq_int_wakeups += n * self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += n * self.isq_fp.len() as u64;

        // Dispatch-stage stall accounting, mirroring `dispatch`'s gate
        // order. An unresolved mispredicted branch charges every cycle to
        // the redirect stall; otherwise the redirect window covers the
        // leading cycles, the I-cache refill the next ones, and any
        // remainder is an active frontend blocked on the same structural
        // hazard every cycle.
        if self.waiting_branch.is_some() {
            self.stats.redirect_stall_cycles += n;
            return;
        }
        let n_redirect = self.redirect_until.saturating_sub(from).min(n);
        let n_icache = self
            .fetch_ready_at
            .saturating_sub(from)
            .min(n)
            .saturating_sub(n_redirect);
        let n_structural = n - n_redirect - n_icache;
        self.stats.redirect_stall_cycles += n_redirect;
        self.stats.icache_stall_cycles += n_icache;
        if n_structural > 0 {
            let op = self
                .pending
                .as_ref()
                .expect("active quiescent frontend must hold a pending op");
            if self.rob_len == self.rob.len() {
                self.stats.rob_full_stalls += n_structural;
            } else {
                let dst_fp = op.effective_dst().map(|r| r.is_fp());
                let rename_blocked = match dst_fp {
                    Some(true) => self.fp_free == 0,
                    Some(false) => self.int_free == 0,
                    None => false,
                };
                if rename_blocked {
                    self.stats.rename_stalls += n_structural;
                } else {
                    match op.class {
                        OpClass::Load | OpClass::Store => {
                            self.stats.lsq_full_stalls += n_structural
                        }
                        _ => self.stats.isq_full_stalls += n_structural,
                    }
                }
            }
        }
    }

    /// FNV-1a digest over the complete microarchitectural state —
    /// everything `tick` reads or writes except the `stats`/`activity`
    /// counters (those are compared directly via `PartialEq` in the
    /// differential tests). Two cores with equal digests behave
    /// identically from here on given the same inputs.
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut put = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        let dep_words = |d: Dep| (d.slot as u64, d.seq);

        put(self.rob_head as u64);
        put(self.rob_len as u64);
        put(self.next_seq);
        for s in &self.rob {
            if s.seq == 0 {
                continue; // freed slots carry no future-visible state
            }
            put(s.seq);
            put(s.class.index() as u64);
            put(s.dispatched_at);
            put(s.ready_at);
            let (a, b) = dep_words(s.src1);
            put(a);
            put(b);
            let (a, b) = dep_words(s.src2);
            put(a);
            put(b);
            put(match s.dst_fp {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
            put(s.addr);
            put(s.mispredicted as u64);
        }
        for d in &self.last_writer {
            let (a, b) = dep_words(*d);
            put(a);
            put(b);
        }
        put(self.int_free as u64);
        put(self.fp_free as u64);
        for queue in [&self.isq_int, &self.isq_fp, &self.loads, &self.stores] {
            put(queue.len() as u64);
            for &i in queue.iter() {
                put(i as u64);
            }
        }
        for fu in &self.fus {
            for &f in fu.free_at() {
                put(f);
            }
        }
        match &self.pending {
            None => put(0),
            Some(op) => {
                put(1);
                put(op.pc);
                put(op.class.index() as u64);
                put(op.addr);
                put(op.size as u64);
                put(op.predicted_correctly as u64);
                let reg = |r: Option<ArchReg>| r.map_or(0, |r| r.flat_index() as u64 + 1);
                put(reg(op.src1));
                put(reg(op.src2));
                put(reg(op.dst));
            }
        }
        put(self.fetch_ready_at);
        put(self.last_fetch_line);
        match self.waiting_branch {
            None => put(0),
            Some(d) => {
                put(1);
                let (a, b) = dep_words(d);
                put(a);
                put(b);
            }
        }
        put(self.redirect_until);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsched_mem::MemConfig;

    /// Cycles through a fixed op vector forever.
    struct VecWorkload {
        ops: Vec<MicroOp>,
        i: usize,
    }

    impl VecWorkload {
        fn new(ops: Vec<MicroOp>) -> Self {
            assert!(!ops.is_empty());
            VecWorkload { ops, i: 0 }
        }
    }

    impl Workload for VecWorkload {
        fn name(&self) -> &str {
            "vec"
        }
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.i % self.ops.len()];
            self.i += 1;
            op
        }
        fn current_phase(&self) -> usize {
            0
        }
    }

    fn run(core: &mut Core, w: &mut dyn Workload, mem: &mut MemSystem, cycles: u64) {
        for now in 0..cycles {
            core.tick(now, w, mem);
        }
    }

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::default(), 2)
    }

    /// `n` independent ops of a class, each writing a distinct register.
    fn independent(class: OpClass, n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                let dst = if class.is_fp() {
                    ArchReg::Fp((i % 16) as u8)
                } else {
                    ArchReg::Int(1 + (i % 16) as u8)
                };
                let mut op = MicroOp::arith(class, None, None, Some(dst));
                op.pc = 4 * i as u64;
                op
            })
            .collect()
    }

    /// A serial dependency chain on a single register.
    fn chain(class: OpClass) -> Vec<MicroOp> {
        let reg = if class.is_fp() {
            ArchReg::Fp(1)
        } else {
            ArchReg::Int(1)
        };
        vec![MicroOp::arith(class, Some(reg), None, Some(reg))]
    }

    #[test]
    fn int_stream_fast_on_int_core_slow_on_fp_core() {
        let mut m1 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut int_core, &mut w, &mut m1, 20_000);
        let ipc_int = int_core.stats.ipc();

        let mut m2 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut fp_core, &mut w, &mut m2, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        assert!(
            ipc_int > 1.5,
            "INT core should near dispatch-bound IPC on int stream, got {ipc_int}"
        );
        assert!(
            ipc_fp < 0.6,
            "FP core's 1-unit 2-cyc NP int ALU caps at 0.5, got {ipc_fp}"
        );
    }

    #[test]
    fn fp_stream_fast_on_fp_core_slow_on_int_core() {
        let mut m1 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut fp_core, &mut w, &mut m1, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        let mut m2 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut int_core, &mut w, &mut m2, 20_000);
        let ipc_int = int_core.stats.ipc();

        assert!(ipc_fp > 1.5, "FP core on fp stream: got {ipc_fp}");
        assert!(
            ipc_int < 0.3,
            "INT core's 1-unit 4-cyc NP fp ALU caps at 0.25, got {ipc_int}"
        );
    }

    #[test]
    fn dependency_chain_is_latency_bound() {
        // FP ALU chain on the FP core: pipelined latency-4 unit => one
        // result every 4 cycles => IPC ~= 0.25.
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(chain(OpClass::FpAlu));
        run(&mut c, &mut w, &mut m, 20_000);
        let ipc = c.stats.ipc();
        assert!(
            (ipc - 0.25).abs() < 0.05,
            "chain IPC should approach 1/latency, got {ipc}"
        );
    }

    #[test]
    fn independent_wider_than_chain() {
        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(independent(OpClass::IntMul, 32));
        run(&mut c1, &mut w1, &mut m1, 10_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(chain(OpClass::IntMul));
        run(&mut c2, &mut w2, &mut m2, 10_000);

        assert!(
            c1.stats.ipc() > 2.0 * c2.stats.ipc(),
            "ILP must raise throughput: {} vs {}",
            c1.stats.ipc(),
            c2.stats.ipc()
        );
    }

    #[test]
    fn mispredicted_branches_stall_the_frontend() {
        let good: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), true)))
            .collect();
        let bad: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), false)))
            .collect();

        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(good);
        run(&mut c1, &mut w1, &mut m1, 20_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(bad);
        run(&mut c2, &mut w2, &mut m2, 20_000);

        assert!(c2.stats.ipc() < 0.7 * c1.stats.ipc());
        assert!(c2.stats.redirect_stall_cycles > 0);
        assert!(c2.stats.mispredicts > 0);
        assert_eq!(c1.stats.mispredicts, 0);
    }

    #[test]
    fn load_latency_and_store_forwarding() {
        // Load-dependent chain over one cached address: each iteration is
        // load (L1 hit, 2 cyc) -> dependent alu.
        let ops = vec![
            MicroOp::load(0x100, 8, None, ArchReg::Int(2)),
            MicroOp::arith(OpClass::IntAlu, Some(ArchReg::Int(2)), None, Some(ArchReg::Int(3))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 10_000);
        assert!(c.stats.committed.count(OpClass::Load) > 1000);

        // Store followed by a load of the same word: forwarding keeps the
        // load off the cache after the first iteration's allocations.
        let fwd_ops = vec![
            MicroOp::store(0x200, 8, None, ArchReg::Int(4)),
            MicroOp::load(0x200, 8, None, ArchReg::Int(5)),
        ];
        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(fwd_ops);
        run(&mut c2, &mut w2, &mut m2, 10_000);
        assert!(
            c2.stats.committed.total() > 4000,
            "forwarding pairs should flow at high rate, got {}",
            c2.stats.committed.total()
        );
    }

    #[test]
    fn loads_wait_for_older_unresolved_stores_to_same_word() {
        // A store whose data depends on a divide, then a load of the same
        // word: the load must wait and then *forward* from the store —
        // a forwarded load never accesses the D-cache. If the load
        // (incorrectly) bypassed the unresolved store, it would go to the
        // cache and the access count would be ~2 per triple.
        let ops = vec![
            MicroOp::arith(OpClass::IntDiv, Some(ArchReg::Int(1)), None, Some(ArchReg::Int(6))),
            MicroOp::store(0x300, 8, None, ArchReg::Int(6)),
            MicroOp::load(0x300, 8, None, ArchReg::Int(7)),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        // White-box: record each instruction's resolved ready_at by seq.
        use std::collections::HashMap;
        let mut ready: HashMap<u64, (OpClass, u64)> = HashMap::new();
        for now in 0..600 {
            c.tick(now, &mut w, &mut m);
            for s in &c.rob {
                if s.seq != 0 && s.ready_at != NOT_READY {
                    ready.insert(s.seq, (s.class, s.ready_at));
                }
            }
        }
        // First triple is seqs 1 (div), 2 (store), 3 (load).
        let div = ready[&1];
        let store = ready[&2];
        let load = ready[&3];
        assert_eq!(div.0, OpClass::IntDiv);
        assert_eq!(store.0, OpClass::Store);
        assert_eq!(load.0, OpClass::Load);
        assert!(
            store.1 >= div.1,
            "store data depends on the divide: {} vs {}",
            store.1,
            div.1
        );
        assert!(
            load.1 > store.1,
            "load of the same word must not complete before the store: {} vs {}",
            load.1,
            store.1
        );
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Code footprint far beyond the 4KB L1I: every line access misses.
        let ops: Vec<MicroOp> = (0..4096)
            .map(|i| {
                let mut op =
                    MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1 + (i % 16) as u8)));
                op.pc = (i as u64) * 64 * 131; // jump lines, 512KB+ footprint
                op
            })
            .collect();
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 20_000);
        assert!(c.stats.icache_stall_cycles > 5_000);
        assert!(c.stats.ipc() < 0.5);
    }

    #[test]
    fn rename_pool_pressure_stalls_dispatch() {
        // FP core has only 16 int rename regs: a burst of int writers with
        // a long divide at the head keeps them occupied.
        let mut ops = vec![MicroOp::arith(
            OpClass::IntDiv,
            Some(ArchReg::Int(1)),
            None,
            Some(ArchReg::Int(2)),
        )];
        for i in 0..40 {
            ops.push(MicroOp::arith(
                OpClass::IntAlu,
                Some(ArchReg::Int(2)), // all depend on the divide
                None,
                Some(ArchReg::Int(3 + (i % 20) as u8)),
            ));
        }
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 5_000);
        assert!(
            c.stats.rename_stalls > 0,
            "16-entry int rename pool must saturate"
        );
    }

    #[test]
    fn flush_pipeline_discards_inflight_and_preserves_stats() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        let committed_before = c.stats.committed.total();
        assert!(c.rob_occupancy() > 0);
        c.flush_pipeline();
        assert_eq!(c.rob_occupancy(), 0);
        assert_eq!(c.stats.committed.total(), committed_before);
        // Core keeps executing correctly after the flush.
        for now in 1000..2000 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > committed_before);
    }

    #[test]
    fn stall_until_blocks_frontend() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        c.stall_until(500);
        for now in 0..500 {
            c.tick(now, &mut w, &mut m);
        }
        assert_eq!(c.stats.committed.total(), 0, "stalled core commits nothing");
        for now in 500..1500 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > 0);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        assert!(c.activity.dispatches > 0);
        assert!(c.activity.commits > 0);
        assert!(c.activity.fu_ops[OpClass::IntAlu.index()] > 0);
        assert!(c.activity.int_reg_writes > 0);
        assert_eq!(c.activity.cycles, 1000);
        let taken = c.activity.take();
        assert!(taken.commits > 0);
        assert_eq!(c.activity.commits, 0);
    }

    #[test]
    fn commit_is_in_order() {
        // A long FP divide followed by quick int ops: ints cannot commit
        // before the divide does (ROB order), so total commits are gated.
        let ops = vec![
            MicroOp::arith(OpClass::FpDiv, Some(ArchReg::Fp(1)), None, Some(ArchReg::Fp(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(2))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 2_000);
        // Serial FpDiv chain on a 12-cycle NP unit: ~12 cycles per triple.
        let triples = c.stats.committed.count(OpClass::FpDiv);
        assert!(triples > 0);
        let cycles_per_triple = 2000.0 / triples as f64;
        assert!(
            cycles_per_triple >= 11.0,
            "in-order commit must serialize on the divide: {cycles_per_triple}"
        );
    }
}
