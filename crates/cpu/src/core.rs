//! The out-of-order core pipeline.
//!
//! Stage order inside [`Core::tick`] is commit → issue → dispatch, the
//! usual reverse-pipeline processing that prevents same-cycle
//! flow-through: an instruction dispatched in cycle *t* is issueable from
//! *t+1*, and a result produced in cycle *t* wakes consumers from *t*
//! onward (bypass network assumed).

use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{AccessKind, MemSystem};
use ampsched_trace::Workload;

use crate::activity::ActivityCounters;
use crate::config::CoreConfig;
use crate::fu::FuPool;
use crate::stats::CoreStats;

/// Sentinel: result not yet produced.
const NOT_READY: u64 = u64::MAX;

/// A resolved data dependency: the producing ROB slot plus its sequence
/// number (slot reuse is detected by sequence mismatch, which implies the
/// producer has committed and the value is architecturally available).
#[derive(Debug, Clone, Copy, Default)]
struct Dep {
    slot: u32,
    seq: u64, // 0 = no dependency
}

#[derive(Debug, Clone, Copy)]
struct RobSlot {
    seq: u64, // 0 = empty slot
    class: OpClass,
    dispatched_at: u64,
    /// Cycle the result is available; `NOT_READY` until issued.
    ready_at: u64,
    src1: Dep,
    src2: Dep,
    /// Destination register file: `Some(true)` = FP, `Some(false)` = INT.
    dst_fp: Option<bool>,
    addr: u64,
    mispredicted: bool,
}

impl Default for RobSlot {
    fn default() -> Self {
        RobSlot {
            seq: 0,
            class: OpClass::IntAlu,
            dispatched_at: 0,
            ready_at: NOT_READY,
            src1: Dep::default(),
            src2: Dep::default(),
            dst_fp: None,
            addr: 0,
            mispredicted: false,
        }
    }
}

/// One out-of-order core executing a [`Workload`] stream.
pub struct Core {
    cfg: CoreConfig,
    core_id: usize,

    // Reorder buffer (ring).
    rob: Vec<RobSlot>,
    rob_head: usize,
    rob_len: usize,
    next_seq: u64,

    // Rename state: last writer of each architectural register.
    last_writer: [Dep; ampsched_isa::regs::NUM_ARCH_REGS],
    int_free: u16,
    fp_free: u16,

    // Scheduler queues: ROB slot indices in age order.
    isq_int: Vec<u32>,
    isq_fp: Vec<u32>,
    loads: Vec<u32>,
    stores: Vec<u32>,

    // Functional units (six arithmetic classes).
    fus: [FuPool; 6],

    // Frontend state.
    pending: Option<MicroOp>,
    fetch_ready_at: u64,
    last_fetch_line: u64,
    waiting_branch: Option<Dep>,
    redirect_until: u64,

    /// Architectural statistics.
    pub stats: CoreStats,
    /// Power-model activity counters.
    pub activity: ActivityCounters,
}

impl Core {
    /// Build an idle core.
    pub fn new(cfg: CoreConfig, core_id: usize) -> Self {
        cfg.validate();
        let fus = [
            FuPool::new(cfg.fu[0]),
            FuPool::new(cfg.fu[1]),
            FuPool::new(cfg.fu[2]),
            FuPool::new(cfg.fu[3]),
            FuPool::new(cfg.fu[4]),
            FuPool::new(cfg.fu[5]),
        ];
        Core {
            rob: vec![RobSlot::default(); cfg.rob_size as usize],
            rob_head: 0,
            rob_len: 0,
            next_seq: 1,
            last_writer: [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS],
            int_free: cfg.int_rename_pool(),
            fp_free: cfg.fp_rename_pool(),
            isq_int: Vec::with_capacity(cfg.int_isq as usize),
            isq_fp: Vec::with_capacity(cfg.fp_isq as usize),
            loads: Vec::with_capacity(cfg.lsq_loads as usize),
            stores: Vec::with_capacity(cfg.lsq_stores as usize),
            fus,
            pending: None,
            fetch_ready_at: 0,
            last_fetch_line: u64::MAX,
            waiting_branch: None,
            redirect_until: 0,
            stats: CoreStats::default(),
            activity: ActivityCounters::new(),
            cfg,
            core_id,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Core index within the system (selects L1s in the [`MemSystem`]).
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Occupied ROB entries (diagnostics/tests).
    pub fn rob_occupancy(&self) -> usize {
        self.rob_len
    }

    #[inline]
    fn dep_ready(&self, dep: Dep, now: u64) -> bool {
        if dep.seq == 0 {
            return true;
        }
        let slot = &self.rob[dep.slot as usize];
        // Slot reused or freed => producer committed => value available.
        slot.seq != dep.seq || slot.ready_at <= now
    }

    #[inline]
    fn srcs_ready(&self, slot: &RobSlot, now: u64) -> bool {
        self.dep_ready(slot.src1, now) && self.dep_ready(slot.src2, now)
    }

    /// Advance the core by one cycle. Returns the number of instructions
    /// committed this cycle.
    pub fn tick(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) -> u32 {
        self.stats.cycles += 1;
        self.activity.cycles += 1;
        let committed = self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch(now, workload, mem);
        committed
    }

    // --- Commit ------------------------------------------------------

    fn commit(&mut self, now: u64, mem: &mut MemSystem) -> u32 {
        let mut n = 0u32;
        while n < self.cfg.commit_width as u32 && self.rob_len > 0 {
            let idx = self.rob_head;
            let slot = self.rob[idx];
            if slot.ready_at > now {
                break;
            }
            // Retire.
            match slot.class {
                OpClass::Store => {
                    // Write-back through the store buffer: update cache
                    // state; latency is off the critical path.
                    let _ = mem.access(self.core_id, AccessKind::Store, slot.addr, now);
                    self.activity.dcache_accesses += 1;
                    // Free the store-queue entry.
                    if let Some(pos) = self.stores.iter().position(|&s| s == idx as u32) {
                        self.stores.remove(pos);
                    }
                }
                OpClass::Load => {
                    if let Some(pos) = self.loads.iter().position(|&s| s == idx as u32) {
                        self.loads.remove(pos);
                    }
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if slot.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                _ => {}
            }
            if let Some(fp) = slot.dst_fp {
                if fp {
                    self.fp_free += 1;
                } else {
                    self.int_free += 1;
                }
            }
            self.stats.committed.record(slot.class);
            self.activity.commits += 1;
            self.rob[idx].seq = 0;
            self.rob_head = (self.rob_head + 1) % self.rob.len();
            self.rob_len -= 1;
            n += 1;
        }
        n
    }

    // --- Issue -------------------------------------------------------

    fn issue(&mut self, now: u64, mem: &mut MemSystem) {
        // CAM wakeup energy ∝ queue occupancy.
        self.activity.isq_int_wakeups += self.isq_int.len() as u64;
        self.activity.isq_fp_wakeups += self.isq_fp.len() as u64;

        self.issue_arith_queue(false, now);
        self.issue_arith_queue(true, now);
        self.issue_loads(now, mem);
        self.issue_stores(now);
    }

    fn issue_arith_queue(&mut self, fp: bool, now: u64) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        } as usize;
        let mut issued = 0usize;
        let mut i = 0usize;
        while i < if fp { self.isq_fp.len() } else { self.isq_int.len() } {
            if issued >= width {
                break;
            }
            let slot_idx = if fp { self.isq_fp[i] } else { self.isq_int[i] } as usize;
            let slot = self.rob[slot_idx];
            let eligible = slot.dispatched_at < now && self.srcs_ready(&slot, now);
            if eligible {
                let done_at = if slot.class.is_branch() {
                    // Dedicated branch/condition unit, 1-cycle latency.
                    Some(now + 1)
                } else {
                    self.fus[slot.class.index()].try_issue(now)
                };
                if let Some(done_at) = done_at {
                    self.rob[slot_idx].ready_at = done_at;
                    self.count_issue(&slot);
                    if fp {
                        self.isq_fp.remove(i);
                    } else {
                        self.isq_int.remove(i);
                    }
                    issued += 1;
                    continue; // do not advance i: element removed
                }
            }
            i += 1;
        }
    }

    fn count_issue(&mut self, slot: &RobSlot) {
        self.activity.fu_ops[slot.class.index()] += 1;
        // Register file reads for each real source, writes for the dest.
        let fp_domain = slot.class.is_fp();
        let reads = (slot.src1.seq != 0) as u64 + (slot.src2.seq != 0) as u64;
        if fp_domain {
            self.activity.fp_reg_reads += reads;
        } else {
            self.activity.int_reg_reads += reads;
        }
        match slot.dst_fp {
            Some(true) => self.activity.fp_reg_writes += 1,
            Some(false) => self.activity.int_reg_writes += 1,
            None => {}
        }
    }

    fn issue_loads(&mut self, now: u64, mem: &mut MemSystem) {
        // One load port: the oldest ready load issues. Entries stay in
        // `loads` until commit (they hold the LQ slot).
        for i in 0..self.loads.len() {
            let slot_idx = self.loads[i];
            let slot = self.rob[slot_idx as usize];
            if slot.ready_at != NOT_READY {
                continue; // already issued, waiting for data
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            // Disambiguation against older, in-flight stores to the same
            // 8-byte word (addresses are exact in a trace-driven model).
            let mut blocked = false;
            let mut forward_from: Option<u64> = None;
            for &st_idx in &self.stores {
                let st = self.rob[st_idx as usize];
                if st.seq >= slot.seq {
                    continue; // younger store: irrelevant
                }
                if st.addr >> 3 == slot.addr >> 3 {
                    if st.ready_at == NOT_READY || st.ready_at > now {
                        blocked = true; // store data not ready yet
                    } else {
                        forward_from = Some(st.ready_at);
                    }
                }
            }
            if blocked {
                continue;
            }
            let slot_idx = slot_idx as usize;
            let done_at = if forward_from.is_some() {
                now + 1 // store-to-load forwarding
            } else {
                let lat = mem.access(self.core_id, AccessKind::Load, slot.addr, now);
                self.activity.dcache_accesses += 1;
                now + lat as u64
            };
            self.rob[slot_idx].ready_at = done_at;
            let s = self.rob[slot_idx];
            self.count_issue(&s);
            break;
        }
    }

    fn issue_stores(&mut self, now: u64) {
        // One store port: compute address + capture data.
        for &slot_idx in &self.stores {
            let slot = self.rob[slot_idx as usize];
            if slot.ready_at != NOT_READY {
                continue;
            }
            if slot.dispatched_at >= now || !self.srcs_ready(&slot, now) {
                continue;
            }
            self.rob[slot_idx as usize].ready_at = now + 1;
            let s = self.rob[slot_idx as usize];
            self.count_issue(&s);
            break;
        }
    }

    // --- Dispatch ----------------------------------------------------

    fn dispatch(&mut self, now: u64, workload: &mut dyn Workload, mem: &mut MemSystem) {
        // Unresolved mispredicted branch: frontend fetches the wrong path;
        // no correct-path instructions enter until resolve + penalty.
        if let Some(dep) = self.waiting_branch {
            let slot = &self.rob[dep.slot as usize];
            let resolved = slot.seq != dep.seq || slot.ready_at <= now;
            if resolved {
                let resolve_time = if slot.seq == dep.seq { slot.ready_at } else { now };
                self.redirect_until =
                    resolve_time.max(now) + self.cfg.mispredict_penalty as u64;
                self.waiting_branch = None;
            } else {
                self.stats.redirect_stall_cycles += 1;
                return;
            }
        }
        if self.redirect_until > now {
            self.stats.redirect_stall_cycles += 1;
            return;
        }
        if self.fetch_ready_at > now {
            self.stats.icache_stall_cycles += 1;
            return;
        }

        for _ in 0..self.cfg.dispatch_width {
            // Refill the peek buffer.
            if self.pending.is_none() {
                self.pending = Some(workload.next_op());
            }
            let op = *self.pending.as_ref().expect("just filled");

            // Instruction-cache access on line crossing.
            let line = op.pc >> 6;
            if line != self.last_fetch_line {
                let lat = mem.access(self.core_id, AccessKind::Ifetch, op.pc, now);
                self.activity.icache_accesses += 1;
                self.last_fetch_line = line;
                if lat > mem.config().l1_latency {
                    // Miss: frontend refills; retry once the line arrives.
                    self.fetch_ready_at = now + lat as u64;
                    self.stats.icache_stall_cycles += 1;
                    return;
                }
            }

            // Structural hazards.
            if self.rob_len == self.rob.len() {
                self.stats.rob_full_stalls += 1;
                return;
            }
            let dst_fp = op.effective_dst().map(|r| r.is_fp());
            match dst_fp {
                Some(true) if self.fp_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                Some(false) if self.int_free == 0 => {
                    self.stats.rename_stalls += 1;
                    return;
                }
                _ => {}
            }
            match op.class {
                OpClass::Load => {
                    if self.loads.len() >= self.cfg.lsq_loads as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                OpClass::Store => {
                    if self.stores.len() >= self.cfg.lsq_stores as usize {
                        self.stats.lsq_full_stalls += 1;
                        return;
                    }
                }
                c if c.is_fp() => {
                    if self.isq_fp.len() >= self.cfg.fp_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
                _ => {
                    if self.isq_int.len() >= self.cfg.int_isq as usize {
                        self.stats.isq_full_stalls += 1;
                        return;
                    }
                }
            }

            // All clear: allocate and rename.
            let seq = self.next_seq;
            self.next_seq += 1;
            let tail = (self.rob_head + self.rob_len) % self.rob.len();

            let dep_of = |r: Option<ArchReg>, lw: &[Dep]| -> Dep {
                match r {
                    Some(r) if !r.is_zero() => lw[r.flat_index()],
                    _ => Dep::default(),
                }
            };
            let src1 = dep_of(op.src1, &self.last_writer);
            let src2 = dep_of(op.src2, &self.last_writer);

            self.rob[tail] = RobSlot {
                seq,
                class: op.class,
                dispatched_at: now,
                ready_at: NOT_READY,
                src1,
                src2,
                dst_fp,
                addr: op.addr,
                mispredicted: op.class.is_branch() && !op.predicted_correctly,
            };
            self.rob_len += 1;
            self.pending = None;

            if let Some(dst) = op.effective_dst() {
                self.last_writer[dst.flat_index()] = Dep {
                    slot: tail as u32,
                    seq,
                };
                if dst.is_fp() {
                    self.fp_free -= 1;
                } else {
                    self.int_free -= 1;
                }
            }

            self.activity.dispatches += 1;
            match op.class {
                OpClass::Load | OpClass::Store => {
                    self.activity.lsq_inserts += 1;
                    if op.class == OpClass::Load {
                        self.loads.push(tail as u32);
                    } else {
                        self.stores.push(tail as u32);
                    }
                }
                c if c.is_fp() => {
                    self.activity.isq_fp_inserts += 1;
                    self.isq_fp.push(tail as u32);
                }
                _ => {
                    self.activity.isq_int_inserts += 1;
                    self.isq_int.push(tail as u32);
                }
            }

            if op.class.is_branch() {
                self.activity.bpred_lookups += 1;
                if !op.predicted_correctly {
                    self.waiting_branch = Some(Dep {
                        slot: tail as u32,
                        seq,
                    });
                    return; // younger ops are wrong-path until resolve
                }
            }
        }
    }

    // --- Swap support --------------------------------------------------

    /// Squash all in-flight work: empties the ROB, queues, rename state,
    /// and functional units. Committed statistics are preserved. Used when
    /// a thread is migrated off this core; uncommitted trace ops are
    /// dropped (statistically irrelevant for a stochastic trace).
    pub fn flush_pipeline(&mut self) {
        for s in &mut self.rob {
            s.seq = 0;
        }
        self.rob_head = 0;
        self.rob_len = 0;
        self.last_writer = [Dep::default(); ampsched_isa::regs::NUM_ARCH_REGS];
        self.int_free = self.cfg.int_rename_pool();
        self.fp_free = self.cfg.fp_rename_pool();
        self.isq_int.clear();
        self.isq_fp.clear();
        self.loads.clear();
        self.stores.clear();
        for fu in &mut self.fus {
            fu.reset();
        }
        self.pending = None;
        self.waiting_branch = None;
        self.last_fetch_line = u64::MAX;
        // fetch_ready_at / redirect_until are wall-clock gates; the system
        // adds the swap overhead on top via `stall_until`.
    }

    /// Block the frontend until the given cycle (swap overhead).
    pub fn stall_until(&mut self, cycle: u64) {
        self.fetch_ready_at = self.fetch_ready_at.max(cycle);
        self.redirect_until = self.redirect_until.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsched_mem::MemConfig;

    /// Cycles through a fixed op vector forever.
    struct VecWorkload {
        ops: Vec<MicroOp>,
        i: usize,
    }

    impl VecWorkload {
        fn new(ops: Vec<MicroOp>) -> Self {
            assert!(!ops.is_empty());
            VecWorkload { ops, i: 0 }
        }
    }

    impl Workload for VecWorkload {
        fn name(&self) -> &str {
            "vec"
        }
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.i % self.ops.len()];
            self.i += 1;
            op
        }
        fn current_phase(&self) -> usize {
            0
        }
    }

    fn run(core: &mut Core, w: &mut dyn Workload, mem: &mut MemSystem, cycles: u64) {
        for now in 0..cycles {
            core.tick(now, w, mem);
        }
    }

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::default(), 2)
    }

    /// `n` independent ops of a class, each writing a distinct register.
    fn independent(class: OpClass, n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                let dst = if class.is_fp() {
                    ArchReg::Fp((i % 16) as u8)
                } else {
                    ArchReg::Int(1 + (i % 16) as u8)
                };
                let mut op = MicroOp::arith(class, None, None, Some(dst));
                op.pc = 4 * i as u64;
                op
            })
            .collect()
    }

    /// A serial dependency chain on a single register.
    fn chain(class: OpClass) -> Vec<MicroOp> {
        let reg = if class.is_fp() {
            ArchReg::Fp(1)
        } else {
            ArchReg::Int(1)
        };
        vec![MicroOp::arith(class, Some(reg), None, Some(reg))]
    }

    #[test]
    fn int_stream_fast_on_int_core_slow_on_fp_core() {
        let mut m1 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut int_core, &mut w, &mut m1, 20_000);
        let ipc_int = int_core.stats.ipc();

        let mut m2 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut fp_core, &mut w, &mut m2, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        assert!(
            ipc_int > 1.5,
            "INT core should near dispatch-bound IPC on int stream, got {ipc_int}"
        );
        assert!(
            ipc_fp < 0.6,
            "FP core's 1-unit 2-cyc NP int ALU caps at 0.5, got {ipc_fp}"
        );
    }

    #[test]
    fn fp_stream_fast_on_fp_core_slow_on_int_core() {
        let mut m1 = mem();
        let mut fp_core = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut fp_core, &mut w, &mut m1, 20_000);
        let ipc_fp = fp_core.stats.ipc();

        let mut m2 = mem();
        let mut int_core = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::FpAlu, 32));
        run(&mut int_core, &mut w, &mut m2, 20_000);
        let ipc_int = int_core.stats.ipc();

        assert!(ipc_fp > 1.5, "FP core on fp stream: got {ipc_fp}");
        assert!(
            ipc_int < 0.3,
            "INT core's 1-unit 4-cyc NP fp ALU caps at 0.25, got {ipc_int}"
        );
    }

    #[test]
    fn dependency_chain_is_latency_bound() {
        // FP ALU chain on the FP core: pipelined latency-4 unit => one
        // result every 4 cycles => IPC ~= 0.25.
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(chain(OpClass::FpAlu));
        run(&mut c, &mut w, &mut m, 20_000);
        let ipc = c.stats.ipc();
        assert!(
            (ipc - 0.25).abs() < 0.05,
            "chain IPC should approach 1/latency, got {ipc}"
        );
    }

    #[test]
    fn independent_wider_than_chain() {
        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(independent(OpClass::IntMul, 32));
        run(&mut c1, &mut w1, &mut m1, 10_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(chain(OpClass::IntMul));
        run(&mut c2, &mut w2, &mut m2, 10_000);

        assert!(
            c1.stats.ipc() > 2.0 * c2.stats.ipc(),
            "ILP must raise throughput: {} vs {}",
            c1.stats.ipc(),
            c2.stats.ipc()
        );
    }

    #[test]
    fn mispredicted_branches_stall_the_frontend() {
        let good: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), true)))
            .collect();
        let bad: Vec<MicroOp> = independent(OpClass::IntAlu, 8)
            .into_iter()
            .chain(std::iter::once(MicroOp::branch(Some(ArchReg::Int(1)), false)))
            .collect();

        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::int_core(), 0);
        let mut w1 = VecWorkload::new(good);
        run(&mut c1, &mut w1, &mut m1, 20_000);

        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(bad);
        run(&mut c2, &mut w2, &mut m2, 20_000);

        assert!(c2.stats.ipc() < 0.7 * c1.stats.ipc());
        assert!(c2.stats.redirect_stall_cycles > 0);
        assert!(c2.stats.mispredicts > 0);
        assert_eq!(c1.stats.mispredicts, 0);
    }

    #[test]
    fn load_latency_and_store_forwarding() {
        // Load-dependent chain over one cached address: each iteration is
        // load (L1 hit, 2 cyc) -> dependent alu.
        let ops = vec![
            MicroOp::load(0x100, 8, None, ArchReg::Int(2)),
            MicroOp::arith(OpClass::IntAlu, Some(ArchReg::Int(2)), None, Some(ArchReg::Int(3))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 10_000);
        assert!(c.stats.committed.count(OpClass::Load) > 1000);

        // Store followed by a load of the same word: forwarding keeps the
        // load off the cache after the first iteration's allocations.
        let fwd_ops = vec![
            MicroOp::store(0x200, 8, None, ArchReg::Int(4)),
            MicroOp::load(0x200, 8, None, ArchReg::Int(5)),
        ];
        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::int_core(), 0);
        let mut w2 = VecWorkload::new(fwd_ops);
        run(&mut c2, &mut w2, &mut m2, 10_000);
        assert!(
            c2.stats.committed.total() > 4000,
            "forwarding pairs should flow at high rate, got {}",
            c2.stats.committed.total()
        );
    }

    #[test]
    fn loads_wait_for_older_unresolved_stores_to_same_word() {
        // A store whose data depends on a divide, then a load of the same
        // word: the load must wait and then *forward* from the store —
        // a forwarded load never accesses the D-cache. If the load
        // (incorrectly) bypassed the unresolved store, it would go to the
        // cache and the access count would be ~2 per triple.
        let ops = vec![
            MicroOp::arith(OpClass::IntDiv, Some(ArchReg::Int(1)), None, Some(ArchReg::Int(6))),
            MicroOp::store(0x300, 8, None, ArchReg::Int(6)),
            MicroOp::load(0x300, 8, None, ArchReg::Int(7)),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        // White-box: record each instruction's resolved ready_at by seq.
        use std::collections::HashMap;
        let mut ready: HashMap<u64, (OpClass, u64)> = HashMap::new();
        for now in 0..600 {
            c.tick(now, &mut w, &mut m);
            for s in &c.rob {
                if s.seq != 0 && s.ready_at != NOT_READY {
                    ready.insert(s.seq, (s.class, s.ready_at));
                }
            }
        }
        // First triple is seqs 1 (div), 2 (store), 3 (load).
        let div = ready[&1];
        let store = ready[&2];
        let load = ready[&3];
        assert_eq!(div.0, OpClass::IntDiv);
        assert_eq!(store.0, OpClass::Store);
        assert_eq!(load.0, OpClass::Load);
        assert!(
            store.1 >= div.1,
            "store data depends on the divide: {} vs {}",
            store.1,
            div.1
        );
        assert!(
            load.1 > store.1,
            "load of the same word must not complete before the store: {} vs {}",
            load.1,
            store.1
        );
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Code footprint far beyond the 4KB L1I: every line access misses.
        let ops: Vec<MicroOp> = (0..4096)
            .map(|i| {
                let mut op =
                    MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1 + (i % 16) as u8)));
                op.pc = (i as u64) * 64 * 131; // jump lines, 512KB+ footprint
                op
            })
            .collect();
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 20_000);
        assert!(c.stats.icache_stall_cycles > 5_000);
        assert!(c.stats.ipc() < 0.5);
    }

    #[test]
    fn rename_pool_pressure_stalls_dispatch() {
        // FP core has only 16 int rename regs: a burst of int writers with
        // a long divide at the head keeps them occupied.
        let mut ops = vec![MicroOp::arith(
            OpClass::IntDiv,
            Some(ArchReg::Int(1)),
            None,
            Some(ArchReg::Int(2)),
        )];
        for i in 0..40 {
            ops.push(MicroOp::arith(
                OpClass::IntAlu,
                Some(ArchReg::Int(2)), // all depend on the divide
                None,
                Some(ArchReg::Int(3 + (i % 20) as u8)),
            ));
        }
        let mut m = mem();
        let mut c = Core::new(CoreConfig::fp_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 5_000);
        assert!(
            c.stats.rename_stalls > 0,
            "16-entry int rename pool must saturate"
        );
    }

    #[test]
    fn flush_pipeline_discards_inflight_and_preserves_stats() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        let committed_before = c.stats.committed.total();
        assert!(c.rob_occupancy() > 0);
        c.flush_pipeline();
        assert_eq!(c.rob_occupancy(), 0);
        assert_eq!(c.stats.committed.total(), committed_before);
        // Core keeps executing correctly after the flush.
        for now in 1000..2000 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > committed_before);
    }

    #[test]
    fn stall_until_blocks_frontend() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        c.stall_until(500);
        for now in 0..500 {
            c.tick(now, &mut w, &mut m);
        }
        assert_eq!(c.stats.committed.total(), 0, "stalled core commits nothing");
        for now in 500..1500 {
            c.tick(now, &mut w, &mut m);
        }
        assert!(c.stats.committed.total() > 0);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(independent(OpClass::IntAlu, 32));
        run(&mut c, &mut w, &mut m, 1000);
        assert!(c.activity.dispatches > 0);
        assert!(c.activity.commits > 0);
        assert!(c.activity.fu_ops[OpClass::IntAlu.index()] > 0);
        assert!(c.activity.int_reg_writes > 0);
        assert_eq!(c.activity.cycles, 1000);
        let taken = c.activity.take();
        assert!(taken.commits > 0);
        assert_eq!(c.activity.commits, 0);
    }

    #[test]
    fn commit_is_in_order() {
        // A long FP divide followed by quick int ops: ints cannot commit
        // before the divide does (ROB order), so total commits are gated.
        let ops = vec![
            MicroOp::arith(OpClass::FpDiv, Some(ArchReg::Fp(1)), None, Some(ArchReg::Fp(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(1))),
            MicroOp::arith(OpClass::IntAlu, None, None, Some(ArchReg::Int(2))),
        ];
        let mut m = mem();
        let mut c = Core::new(CoreConfig::int_core(), 0);
        let mut w = VecWorkload::new(ops);
        run(&mut c, &mut w, &mut m, 2_000);
        // Serial FpDiv chain on a 12-cycle NP unit: ~12 cycles per triple.
        let triples = c.stats.committed.count(OpClass::FpDiv);
        assert!(triples > 0);
        let cycles_per_triple = 2000.0 / triples as f64;
        assert!(
            cycles_per_triple >= 11.0,
            "in-order commit must serialize on the divide: {cycles_per_triple}"
        );
    }
}
