//! # ampsched-cpu
//!
//! Trace-driven, cycle-level out-of-order core timing model — the stand-in
//! for the paper's SESC simulator.
//!
//! The model executes [`ampsched_trace::Workload`] streams on a core whose
//! resources follow Tables I and II of the paper:
//!
//! * in-order frontend (fetch through dispatch) gated by the L1I, redirect
//!   stalls after branch mispredictions, and structural availability
//!   (ROB / issue-queue / LSQ entries, rename registers);
//! * split integer and floating-point issue queues with oldest-first
//!   wakeup/select;
//! * per-class functional-unit pools with real latencies and
//!   pipelined/non-pipelined initiation (Table II) — the source of the
//!   INT-core/FP-core asymmetry;
//! * a load/store queue with exact (trace-known) address disambiguation
//!   and store-to-load forwarding;
//! * in-order commit.
//!
//! Wrong-path execution is not modeled; a mispredicted branch stalls
//! dispatch until it resolves plus a redirect penalty — the standard
//! trace-driven approximation.
//!
//! Every microarchitectural event is tallied in [`ActivityCounters`],
//! which `ampsched-power` converts to energy.

pub mod activity;
pub mod config;
pub mod core;
pub mod fu;
pub mod profile;
pub mod stats;

pub use crate::core::Core;
pub use activity::ActivityCounters;
pub use config::{CoreConfig, CoreFlavor, FuSpec};
pub use profile::{PipeSnapshot, StallCause, STALL_CAUSE_NAMES};
pub use stats::CoreStats;
