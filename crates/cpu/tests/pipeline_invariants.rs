//! Pipeline-level invariants checked against randomized workloads, on
//! the in-tree `util::check` harness with a fixed seed.

use ampsched_cpu::{Core, CoreConfig};
use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{MemConfig, MemSystem};
use ampsched_trace::Workload;
use ampsched_util::check::{Checker, Source};
use ampsched_util::{prop_assert, prop_assert_eq};

const SEED: u64 = 0xc40_0003;

fn checker() -> Checker {
    Checker::new(SEED).cases(24).suite("cpu_pipeline")
}

/// Workload producing a random but valid op stream.
struct RandomWorkload {
    ops: Vec<MicroOp>,
    i: usize,
}

impl Workload for RandomWorkload {
    fn name(&self) -> &str {
        "random"
    }
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }
    fn current_phase(&self) -> usize {
        0
    }
}

fn arb_op(s: &mut Source) -> MicroOp {
    let class = ampsched_isa::ops::ALL_OP_CLASSES[s.u8_in(0, 9) as usize];
    let s1 = s.u8_in(0, 32);
    let s2 = s.u8_in(0, 32);
    let d = s.u8_in(0, 32);
    let addr = s.u64_in(0, 65536);
    let pred = s.bool();
    match class {
        OpClass::Load => MicroOp::load(addr & !7, 8, Some(ArchReg::Int(s1)), ArchReg::Int(d.max(1))),
        OpClass::Store => MicroOp::store(addr & !7, 8, Some(ArchReg::Int(s1)), ArchReg::Int(s2.max(1))),
        OpClass::Branch => MicroOp::branch(Some(ArchReg::Int(s1)), pred),
        c if c.is_fp() => MicroOp::arith(
            c,
            Some(ArchReg::Fp(s1)),
            Some(ArchReg::Fp(s2)),
            Some(ArchReg::Fp(d)),
        ),
        c => MicroOp::arith(
            c,
            Some(ArchReg::Int(s1)),
            Some(ArchReg::Int(s2)),
            Some(ArchReg::Int(d.max(1))),
        ),
    }
}

/// Commit never exceeds dispatch; activity counters are consistent;
/// the pipeline never deadlocks on any op mixture.
#[test]
fn pipeline_liveness_and_counter_consistency() {
    checker().run(
        "pipeline_liveness_and_counter_consistency",
        |s: &mut Source| {
            let ops = s.vec_with(8, 63, arb_op);
            let fp_core = s.bool();
            (ops, fp_core)
        },
        |(ops, fp_core)| {
            let mut ops = ops.clone();
            for (i, op) in ops.iter_mut().enumerate() {
                op.pc = (i as u64) * 4 % 4096;
            }
            let cfg = if *fp_core {
                CoreConfig::fp_core()
            } else {
                CoreConfig::int_core()
            };
            let mut core = Core::new(cfg, 0);
            let mut mem = MemSystem::new(MemConfig::default(), 1);
            let mut w = RandomWorkload { ops, i: 0 };
            let mut committed = 0u64;
            for now in 0..30_000u64 {
                committed += core.tick(now, &mut w, &mut mem) as u64;
            }
            // Liveness: the core must retire work (no deadlock). The worst
            // mixtures (all divides on a non-pipelined unit) still retire
            // one op per ~12 cycles.
            prop_assert!(committed > 500, "only {committed} commits in 30k cycles");
            // Conservation: commits <= dispatches, and both tallies agree
            // with the stats layer.
            prop_assert!(core.activity.commits <= core.activity.dispatches);
            prop_assert_eq!(core.activity.commits, committed);
            prop_assert_eq!(core.stats.committed.total(), committed);
            // ROB occupancy bounded by capacity.
            prop_assert!(core.rob_occupancy() <= core.config().rob_size as usize);
            // Cycles counted exactly once per tick.
            prop_assert_eq!(core.stats.cycles, 30_000);
            Ok(())
        },
    );
}

/// IPC can never exceed the dispatch width.
#[test]
fn ipc_bounded_by_dispatch_width() {
    checker().run(
        "ipc_bounded_by_dispatch_width",
        |s: &mut Source| s.vec_with(8, 31, arb_op),
        |ops| {
            let mut ops = ops.clone();
            for (i, op) in ops.iter_mut().enumerate() {
                op.pc = (i as u64) * 4 % 2048;
            }
            let mut core = Core::new(CoreConfig::int_core(), 0);
            let mut mem = MemSystem::new(MemConfig::default(), 1);
            let mut w = RandomWorkload { ops, i: 0 };
            for now in 0..10_000u64 {
                core.tick(now, &mut w, &mut mem);
            }
            prop_assert!(core.stats.ipc() <= core.config().dispatch_width as f64 + 1e-9);
            Ok(())
        },
    );
}

/// Flushing at an arbitrary point preserves committed counts and the
/// core continues to make progress.
#[test]
fn flush_anywhere_is_safe() {
    checker().run(
        "flush_anywhere_is_safe",
        |s: &mut Source| {
            let ops = s.vec_with(8, 31, arb_op);
            let flush_at = s.u64_in(100, 5000);
            (ops, flush_at)
        },
        |(ops, flush_at)| {
            let flush_at = *flush_at;
            let mut ops = ops.clone();
            for (i, op) in ops.iter_mut().enumerate() {
                op.pc = (i as u64) * 4 % 2048;
            }
            let mut core = Core::new(CoreConfig::fp_core(), 0);
            let mut mem = MemSystem::new(MemConfig::default(), 1);
            let mut w = RandomWorkload { ops, i: 0 };
            for now in 0..flush_at {
                core.tick(now, &mut w, &mut mem);
            }
            let committed_at_flush = core.stats.committed.total();
            core.flush_pipeline();
            prop_assert_eq!(core.rob_occupancy(), 0);
            prop_assert_eq!(core.stats.committed.total(), committed_at_flush);
            for now in flush_at..flush_at + 20_000 {
                core.tick(now, &mut w, &mut mem);
            }
            prop_assert!(core.stats.committed.total() > committed_at_flush);
            Ok(())
        },
    );
}
