//! Differential cycle-exactness harness: the optimized fast path
//! ([`Core::tick`] plus [`Core::fast_forward`] skip-ahead) must be
//! bit-identical to the frozen reference path ([`Core::reference_tick`])
//! — same microarchitectural state digest every cycle, same statistics,
//! same activity counters — over property-generated random programs and
//! over the real trace generator with fixed seeds.

use ampsched_cpu::core::Core;
use ampsched_cpu::{CoreConfig, FuSpec};
use ampsched_isa::{ArchReg, MicroOp, OpClass};
use ampsched_mem::{MemConfig, MemSystem};
use ampsched_trace::{suite, TraceGenerator, Workload};
use ampsched_util::check::{Checker, Source};
use ampsched_util::{prop_assert, prop_assert_eq};

/// Cycles through a fixed op vector forever.
struct VecWorkload {
    ops: Vec<MicroOp>,
    i: usize,
}

impl VecWorkload {
    fn new(ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty());
        VecWorkload { ops, i: 0 }
    }
}

impl Workload for VecWorkload {
    fn name(&self) -> &str {
        "vec"
    }
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }
    fn current_phase(&self) -> usize {
        0
    }
}

/// One random micro-op. Registers come from a small pool so dependency
/// chains form; addresses share 8-byte words so loads alias stores;
/// branches are mostly well-predicted (like real workloads) but not
/// always, so redirect stalls and `waiting_branch` resolution get
/// exercised.
fn random_op(s: &mut Source, pc: &mut u64) -> MicroOp {
    *pc += 4 * s.u64_in(1, 4); // occasional line-crossing gaps
    if s.u64_in(0, 16) == 0 {
        *pc += 64 * s.u64_in(1, 32); // jump to a far line: L1I pressure
    }
    let reg = |s: &mut Source| -> Option<ArchReg> {
        match s.u64_in(0, 4) {
            0 => None,
            1 => Some(ArchReg::Fp(s.u8_in(0, 8))),
            _ => Some(ArchReg::Int(s.u8_in(0, 8))),
        }
    };
    let classes = [
        OpClass::IntAlu,
        OpClass::IntAlu,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];
    let class = *s.choice(&classes);
    let mut op = match class {
        OpClass::Load => MicroOp::load(
            8 * s.u64_in(0, 64),
            8,
            reg(s),
            match s.u64_in(0, 4) {
                0 => ArchReg::Fp(s.u8_in(0, 8)),
                _ => ArchReg::Int(s.u8_in(0, 8)),
            },
        ),
        OpClass::Store => MicroOp::store(8 * s.u64_in(0, 64), 8, reg(s), ArchReg::Int(s.u8_in(0, 8))),
        OpClass::Branch => MicroOp::branch(reg(s), s.u64_in(0, 10) != 0),
        c => {
            // arith dst must avoid the hard-wired zero for dep coverage,
            // but allowing zero (no real dest) is also a valid case.
            let dst = match s.u64_in(0, 8) {
                0 => None,
                n if c.is_fp() || n < 5 => Some(if c.is_fp() {
                    ArchReg::Fp(s.u8_in(0, 8))
                } else {
                    ArchReg::Int(s.u8_in(0, 8))
                }),
                _ => Some(ArchReg::Int(s.u8_in(0, 8))),
            };
            MicroOp::arith(c, reg(s), reg(s), dst)
        }
    };
    op.pc = *pc;
    op
}

#[derive(Debug, Clone)]
struct Program {
    fp_core: bool,
    cycles: u64,
    flush_at: Option<u64>,
    ops: Vec<MicroOp>,
}

fn gen_program(s: &mut Source) -> Program {
    let mut pc = 0x1000;
    Program {
        fp_core: s.bool(),
        cycles: s.u64_in(200, 2000),
        flush_at: if s.bool() { Some(s.u64_in(50, 150)) } else { None },
        ops: s.vec_with(1, 64, |s| random_op(s, &mut pc)),
    }
}

fn cfg(fp: bool) -> CoreConfig {
    if fp {
        CoreConfig::fp_core()
    } else {
        CoreConfig::int_core()
    }
}

fn mem() -> MemSystem {
    MemSystem::new(MemConfig::default(), 2)
}

/// Run the fast path with skip-ahead over `cycles`; returns real ticks.
fn run_fast_skipping(
    core: &mut Core,
    w: &mut dyn Workload,
    m: &mut MemSystem,
    cycles: u64,
    flush_at: Option<u64>,
) -> u64 {
    let mut real_ticks = 0;
    let mut cycle = 0u64;
    while cycle < cycles {
        if flush_at != Some(cycle) {
            // A flush is an externally scheduled event the event scan
            // cannot see; never skip across one.
            let mut target = core.next_event_at_or_after(cycle).min(cycles);
            if let Some(f) = flush_at {
                if f > cycle {
                    target = target.min(f);
                }
            }
            if target > cycle {
                core.fast_forward(cycle, target - cycle);
                cycle = target;
                if cycle >= cycles {
                    break;
                }
            }
        }
        if flush_at == Some(cycle) {
            core.flush_pipeline();
            core.stall_until(cycle + 40);
        }
        core.tick(cycle, w, m);
        real_ticks += 1;
        cycle += 1;
    }
    real_ticks
}

#[test]
fn fast_tick_matches_reference_lockstep_on_random_programs() {
    Checker::new(0xd1ff_0001)
        .cases(48)
        .suite("cpu_differential")
        .run("fast_tick_lockstep", gen_program, |p| {
            let mut fast = Core::new(cfg(p.fp_core), 0);
            let mut refc = Core::new(cfg(p.fp_core), 0);
            let mut mf = mem();
            let mut mr = mem();
            let mut wf = VecWorkload::new(p.ops.clone());
            let mut wr = VecWorkload::new(p.ops.clone());
            for now in 0..p.cycles {
                if p.flush_at == Some(now) {
                    fast.flush_pipeline();
                    fast.stall_until(now + 40);
                    refc.flush_pipeline();
                    refc.stall_until(now + 40);
                }
                let cf = fast.tick(now, &mut wf, &mut mf);
                let cr = refc.reference_tick(now, &mut wr, &mut mr);
                prop_assert_eq!(cf, cr, "commit count diverged at cycle {}", now);
                prop_assert_eq!(
                    fast.state_digest(),
                    refc.state_digest(),
                    "state diverged at cycle {}",
                    now
                );
            }
            prop_assert_eq!(fast.stats, refc.stats);
            prop_assert_eq!(fast.activity, refc.activity);
            Ok(())
        });
}

#[test]
fn skip_ahead_matches_reference_on_random_programs() {
    Checker::new(0xd1ff_0002)
        .cases(48)
        .suite("cpu_differential")
        .run("skip_ahead_equivalence", gen_program, |p| {
            let mut fast = Core::new(cfg(p.fp_core), 0);
            let mut refc = Core::new(cfg(p.fp_core), 0);
            let mut mf = mem();
            let mut mr = mem();
            let mut wf = VecWorkload::new(p.ops.clone());
            let mut wr = VecWorkload::new(p.ops.clone());

            let real = run_fast_skipping(&mut fast, &mut wf, &mut mf, p.cycles, p.flush_at);
            for now in 0..p.cycles {
                if p.flush_at == Some(now) {
                    refc.flush_pipeline();
                    refc.stall_until(now + 40);
                }
                refc.reference_tick(now, &mut wr, &mut mr);
            }
            prop_assert!(real <= p.cycles, "cannot tick more than the cycle budget");
            prop_assert_eq!(fast.state_digest(), refc.state_digest());
            prop_assert_eq!(fast.stats, refc.stats);
            prop_assert_eq!(fast.activity, refc.activity);
            Ok(())
        });
}

/// Fixed seeds × real benchmark traces × both core flavors, per the
/// acceptance criteria: lockstep digests plus end-state equality, and the
/// skip-ahead loop checked against the same reference run.
#[test]
fn trace_generator_differential_fixed_seeds() {
    const CYCLES: u64 = 30_000;
    for &(seed, bench) in &[(1u64, "gcc"), (2, "fpstress"), (3, "mcf"), (2012, "equake")] {
        for fp_core in [false, true] {
            let spec = suite::by_name(bench).expect("bench exists");
            let mut fast = Core::new(cfg(fp_core), 0);
            let mut refc = Core::new(cfg(fp_core), 0);
            let mut mf = mem();
            let mut mr = mem();
            let mut wf = TraceGenerator::for_thread(spec.clone(), seed, 0);
            let mut wr = TraceGenerator::for_thread(spec, seed, 0);

            run_fast_skipping(&mut fast, &mut wf, &mut mf, CYCLES, None);
            for now in 0..CYCLES {
                refc.reference_tick(now, &mut wr, &mut mr);
            }
            assert_eq!(
                fast.state_digest(),
                refc.state_digest(),
                "state diverged: seed {seed} bench {bench} fp_core {fp_core}"
            );
            assert_eq!(
                fast.stats, refc.stats,
                "stats diverged: seed {seed} bench {bench} fp_core {fp_core}"
            );
            assert_eq!(
                fast.activity, refc.activity,
                "activity diverged: seed {seed} bench {bench} fp_core {fp_core}"
            );
        }
    }
}

/// A random *valid* core shape: every structural size drawn from the
/// bottom of its legal range up to (a bit past) the paper's Table I
/// values, so the sweep hits degenerate shapes the two stock cores never
/// produce — size-1 issue queues and LSQ halves, a ROB barely wider than
/// dispatch (wraparound every few cycles), rename pools one register
/// deep, single-unit non-pipelined FU pools with long latencies.
fn random_config(s: &mut Source) -> CoreConfig {
    let mut c = if s.bool() {
        CoreConfig::fp_core()
    } else {
        CoreConfig::int_core()
    };
    c.name = "FUZZ";
    c.dispatch_width = s.u8_in(1, 5);
    c.commit_width = s.u8_in(1, 7);
    c.issue_width_int = s.u8_in(1, 5);
    c.issue_width_fp = s.u8_in(1, 5);
    c.rob_size = s.u64_in(c.dispatch_width as u64, 48) as u16;
    c.int_regs = s.u64_in(33, 80) as u16;
    c.fp_regs = s.u64_in(33, 80) as u16;
    c.int_isq = s.u64_in(1, 24) as u16;
    c.fp_isq = s.u64_in(1, 16) as u16;
    c.lsq_loads = s.u64_in(1, 12) as u16;
    c.lsq_stores = s.u64_in(1, 12) as u16;
    for fu in &mut c.fu {
        *fu = FuSpec::new(s.u8_in(1, 3), s.u8_in(1, 16), s.bool());
    }
    c.mispredict_penalty = s.u8_in(1, 20);
    c.validate();
    c
}

#[derive(Debug, Clone)]
struct ShapedProgram {
    config: CoreConfig,
    cycles: u64,
    flush_at: Option<u64>,
    ops: Vec<MicroOp>,
}

fn gen_shaped_program(s: &mut Source) -> ShapedProgram {
    let mut pc = 0x1000;
    ShapedProgram {
        config: random_config(s),
        cycles: s.u64_in(200, 2000),
        flush_at: if s.bool() { Some(s.u64_in(50, 150)) } else { None },
        ops: s.vec_with(1, 64, |s| random_op(s, &mut pc)),
    }
}

/// Config-fuzzed lockstep differential: the structural-hazard, ring-wrap,
/// and wake-cache logic must agree with the reference on *every* legal
/// core shape, not just the two the paper ships. Degenerate shapes are
/// where horizon/cache bookkeeping slips: a size-1 queue makes every
/// insert a full-queue stall, a tiny ROB wraps `rob_head` constantly, and
/// a one-deep rename pool serializes dispatch.
#[test]
fn fast_tick_matches_reference_on_fuzzed_core_shapes() {
    Checker::new(0xd1ff_0003)
        .cases(64)
        .suite("cpu_differential")
        .run("config_fuzz_lockstep", gen_shaped_program, |p| {
            let mut fast = Core::new(p.config.clone(), 0);
            let mut refc = Core::new(p.config.clone(), 0);
            let mut mf = mem();
            let mut mr = mem();
            let mut wf = VecWorkload::new(p.ops.clone());
            let mut wr = VecWorkload::new(p.ops.clone());
            for now in 0..p.cycles {
                if p.flush_at == Some(now) {
                    fast.flush_pipeline();
                    fast.stall_until(now + 40);
                    refc.flush_pipeline();
                    refc.stall_until(now + 40);
                }
                let cf = fast.tick(now, &mut wf, &mut mf);
                let cr = refc.reference_tick(now, &mut wr, &mut mr);
                prop_assert_eq!(cf, cr, "commit count diverged at cycle {}", now);
                prop_assert_eq!(
                    fast.state_digest(),
                    refc.state_digest(),
                    "state diverged at cycle {}",
                    now
                );
            }
            prop_assert_eq!(fast.stats, refc.stats);
            prop_assert_eq!(fast.activity, refc.activity);
            Ok(())
        });
}

/// Same fuzzed shapes through the skip-ahead loop: `next_event_at_or_after`
/// certificates and `fast_forward` replication must hold on degenerate
/// shapes too (end-state, stats, and activity equality).
#[test]
fn skip_ahead_matches_reference_on_fuzzed_core_shapes() {
    Checker::new(0xd1ff_0004)
        .cases(64)
        .suite("cpu_differential")
        .run("config_fuzz_skip_ahead", gen_shaped_program, |p| {
            let mut fast = Core::new(p.config.clone(), 0);
            let mut refc = Core::new(p.config.clone(), 0);
            let mut mf = mem();
            let mut mr = mem();
            let mut wf = VecWorkload::new(p.ops.clone());
            let mut wr = VecWorkload::new(p.ops.clone());

            let real = run_fast_skipping(&mut fast, &mut wf, &mut mf, p.cycles, p.flush_at);
            for now in 0..p.cycles {
                if p.flush_at == Some(now) {
                    refc.flush_pipeline();
                    refc.stall_until(now + 40);
                }
                refc.reference_tick(now, &mut wr, &mut mr);
            }
            prop_assert!(real <= p.cycles, "cannot tick more than the cycle budget");
            prop_assert_eq!(fast.state_digest(), refc.state_digest());
            prop_assert_eq!(fast.stats, refc.stats);
            prop_assert_eq!(fast.activity, refc.activity);
            Ok(())
        });
}

/// The skip-ahead must actually engage on a memory-bound workload — the
/// whole point of the fast path. `mcf` on the FP core spends most cycles
/// waiting on L2/memory, so real ticks must be well under the budget.
#[test]
fn skip_ahead_engages_on_memory_bound_trace() {
    const CYCLES: u64 = 30_000;
    let spec = suite::by_name("mcf").expect("bench exists");
    let mut core = Core::new(CoreConfig::fp_core(), 0);
    let mut m = mem();
    let mut w = TraceGenerator::for_thread(spec, 7, 0);
    let real = run_fast_skipping(&mut core, &mut w, &mut m, CYCLES, None);
    assert!(
        real < CYCLES * 9 / 10,
        "skip-ahead should save >10% of ticks on mcf, ran {real}/{CYCLES}"
    );
    assert_eq!(core.stats.cycles, CYCLES, "skipped cycles still counted");
}
