//! Shared helpers for the bench targets, built on the in-tree
//! [`ampsched_util::timer`] harness (no external Criterion dependency —
//! the build is hermetic).
//!
//! Every paper table/figure has a bench target (`cargo bench -p
//! ampsched-bench`). Each target does two things:
//!
//! 1. **regenerates the artifact once** at reduced scale and prints it —
//!    so a `cargo bench` log contains every table and figure; and
//! 2. **times the experiment's computational kernel** with a small
//!    sample budget (the host is a single-core machine; the full-scale
//!    regeneration lives in the `ampsched` CLI). Timing results land in
//!    `results/bench/<target>.json`.

use ampsched_experiments::common::{Params, Predictors};
use ampsched_experiments::profiling;

/// Parameters for the printed (regenerated) artifact.
pub fn artifact_params() -> Params {
    let mut p = Params::quick();
    p.num_pairs = 8;
    p
}

/// Even smaller parameters for the timed kernel.
pub fn timing_params() -> Params {
    let mut p = Params::quick();
    p.run_insts = 120_000;
    p.max_cycles = 12_000_000;
    p.num_pairs = 2;
    p.system.epoch_cycles = 150_000;
    p
}

/// Process-cached predictors built from [`Params::quick`].
pub fn predictors() -> &'static Predictors {
    profiling::quick_predictors()
}

/// Standard timer configuration for this crate: tiny sample counts,
/// short measurement windows (each iteration is a whole simulation).
pub fn criterion() -> ampsched_util::timer::Criterion {
    ampsched_util::timer::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}
