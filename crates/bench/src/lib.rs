//! Shared helpers for the Criterion benches.
//!
//! Every paper table/figure has a bench target (`cargo bench -p
//! ampsched-bench`). Each target does two things:
//!
//! 1. **regenerates the artifact once** at reduced scale and prints it —
//!    so a `cargo bench` log contains every table and figure; and
//! 2. **times the experiment's computational kernel** with a small
//!    Criterion sample budget (the host is a single-core machine; the
//!    full-scale regeneration lives in the `ampsched` CLI).

use ampsched_experiments::common::{Params, Predictors};
use ampsched_experiments::profiling;

/// Parameters for the printed (regenerated) artifact.
pub fn artifact_params() -> Params {
    let mut p = Params::quick();
    p.num_pairs = 8;
    p
}

/// Even smaller parameters for the timed kernel.
pub fn timing_params() -> Params {
    let mut p = Params::quick();
    p.run_insts = 120_000;
    p.max_cycles = 12_000_000;
    p.num_pairs = 2;
    p.system.epoch_cycles = 150_000;
    p
}

/// Process-cached predictors built from [`Params::quick`].
pub fn predictors() -> &'static Predictors {
    profiling::quick_predictors()
}

/// Standard Criterion configuration for this crate: tiny sample counts,
/// short measurement windows (each iteration is a whole simulation).
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}
