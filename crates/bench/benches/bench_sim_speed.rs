//! Micro-benchmarks of the simulation substrate itself: trace generation,
//! cache accesses, single-core ticking, and the dual-core system loop.

use ampsched_bench::criterion;
use ampsched_core::StaticScheduler;
use ampsched_cpu::{Core, CoreConfig};
use ampsched_mem::{AccessKind, MemConfig, MemSystem};
use ampsched_system::{DualCoreSystem, SystemConfig};
use ampsched_trace::{suite, TraceGenerator, Workload};
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("trace_generator_100k_ops", |b| {
        let mut g = TraceGenerator::for_thread(suite::by_name("gcc").unwrap(), 1, 0);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(g.next_op().addr);
            }
            black_box(acc)
        })
    });

    c.bench_function("cache_100k_accesses", |b| {
        let mut m = MemSystem::new(MemConfig::default(), 1);
        let mut addr = 0u64;
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..100_000u64 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i) % (1 << 20);
                acc += m.access(0, AccessKind::Load, addr & !7, i);
            }
            black_box(acc)
        })
    });

    c.bench_function("single_core_100k_cycles", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::int_core(), 0);
            let mut mem = MemSystem::new(MemConfig::default(), 1);
            let mut w = TraceGenerator::for_thread(suite::by_name("equake").unwrap(), 2, 0);
            let mut n = 0u64;
            for now in 0..100_000u64 {
                n += core.tick(now, &mut w, &mut mem) as u64;
            }
            black_box(n)
        })
    });

    c.bench_function("dual_core_system_200k_insts", |b| {
        b.iter(|| {
            let workloads: [Box<dyn Workload>; 2] = [
                Box::new(TraceGenerator::for_thread(suite::by_name("apsi").unwrap(), 3, 0)),
                Box::new(TraceGenerator::for_thread(suite::by_name("sha").unwrap(), 3, 1)),
            ];
            let mut sys = DualCoreSystem::new(SystemConfig::default(), workloads);
            let mut sched = StaticScheduler;
            black_box(sys.run(&mut sched, 200_000, 10_000_000))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
