//! Figure 9: worst/average/best summary (plus the swap-rate statistic).

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::common::{run_pair, sample_pairs, SchedKind};
use ampsched_experiments::fig78;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let sweep = fig78::run_sweep(&artifact_params(), preds);
    println!("\nFigure 9 — worst/average/best\n\n{}", fig78::render_fig9(&sweep));

    // Kernel: one pair under the proposed scheduler (the figure's subject).
    let tp = timing_params();
    let pair = &sample_pairs(1, tp.seed)[0];
    let proposed = SchedKind::proposed_default(&tp);
    c.bench_function("fig9_one_pair_proposed", |b| {
        b.iter(|| black_box(run_pair(pair, &proposed, preds, &tp)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
