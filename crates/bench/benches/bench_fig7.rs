//! Figure 7: proposed vs HPE per-pair improvements.

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::fig78::{self, Reference};
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let sweep = fig78::run_sweep(&artifact_params(), preds);
    println!(
        "\nFigure 7 — proposed vs HPE\n\n{}",
        fig78::render_fig(&sweep, Reference::Hpe)
    );

    let tp = timing_params();
    c.bench_function("fig7_pair_sweep_proposed_vs_hpe", |b| {
        b.iter(|| {
            let s = fig78::run_sweep(&tp, preds);
            black_box(s.average(Reference::Hpe))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
