//! Design-choice ablation battery (DESIGN.md section 5).

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::ablation;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let mut params = artifact_params();
    params.num_pairs = 5;
    let rows = ablation::run(&params, preds);
    println!("\nAblation battery\n\n{}", ablation::render(&rows));

    let mut tp = timing_params();
    tp.num_pairs = 1;
    c.bench_function("ablation_battery_one_pair", |b| {
        b.iter(|| black_box(ablation::run(&tp, preds)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
