//! Figures 3 and 4: offline profiling, ratio-matrix construction, and the
//! regression-surface fit.

use ampsched_bench::{criterion, predictors};
use ampsched_core::{RatioMatrix, RatioSurface};
use ampsched_experiments::common::Params;
use ampsched_experiments::profiling;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    println!(
        "\nFigure 3 — IPC/Watt ratio matrix (INT/FP)\n\n{}",
        profiling::render_matrix(&preds.matrix)
    );
    println!(
        "Figure 4 — fitted ratio surface\n\n{}",
        profiling::render_surface(&preds.surface)
    );

    // Time the predictor construction from cached profile points.
    let mut params = Params::quick();
    params.profile_insts = 400_000;
    params.profile_interval_cycles = 100_000;
    let profiles = profiling::profile_representatives(&params);
    let points: Vec<_> = profiles.iter().flat_map(|p| p.points.clone()).collect();
    c.bench_function("fig3_matrix_from_points", |b| {
        b.iter(|| black_box(RatioMatrix::from_points(&points)))
    });
    c.bench_function("fig4_surface_fit", |b| {
        b.iter(|| black_box(RatioSurface::from_points(&points)))
    });
    c.bench_function("fig3_profile_one_benchmark", |b| {
        b.iter(|| black_box(profiling::profile_benchmark("pi", &params)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
