//! Figure 6: window-size x history-depth sensitivity.

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::fig6;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let mut params = artifact_params();
    params.num_pairs = 6;
    let pts = fig6::run(&params, preds);
    println!("\nFigure 6 — window/history sensitivity\n\n{}", fig6::render(&pts));

    let tp = timing_params();
    c.bench_function("fig6_sensitivity_grid", |b| {
        b.iter(|| black_box(fig6::run(&tp, preds)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
