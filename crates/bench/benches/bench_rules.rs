//! Section VI-A / Figure 5: swap-rule threshold derivation.

use ampsched_bench::{criterion, timing_params};
use ampsched_experiments::common::Params;
use ampsched_experiments::profiling;
use ampsched_experiments::rules_derivation;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let mut params = Params::quick();
    params.profile_interval_cycles = 100_000; // fine windows for the rules
    let d = rules_derivation::derive(&params, 50);
    println!(
        "\nSection VI-A — derived swap-rule thresholds\n\n{}",
        rules_derivation::render(&d)
    );

    let tp = timing_params();
    let profiles = profiling::profile_representatives(&tp);
    c.bench_function("rules_derivation_from_profiles", |b| {
        b.iter(|| black_box(rules_derivation::derive_from_profiles(&profiles, 50, 1)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
