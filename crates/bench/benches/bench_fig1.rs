//! Figure 1: IPC/Watt of six workloads on each core type.

use ampsched_bench::{artifact_params, criterion, timing_params};
use ampsched_experiments::fig1;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let rows = fig1::run(&artifact_params());
    println!("\nFigure 1 — IPC/Watt per workload per core\n\n{}", fig1::render(&rows));

    let params = timing_params();
    c.bench_function("fig1_six_workloads_two_cores", |b| {
        b.iter(|| black_box(fig1::run(&params)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
