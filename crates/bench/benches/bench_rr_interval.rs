//! Section VII: Round Robin 2ms vs 4ms decision interval.

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::rr_interval;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let mut params = artifact_params();
    params.num_pairs = 6;
    let r = rr_interval::run(&params, preds);
    println!(
        "\nSection VII — RR decision-interval comparison\n\n{}",
        rr_interval::render(&r)
    );

    let tp = timing_params();
    c.bench_function("rr_interval_comparison", |b| {
        b.iter(|| black_box(rr_interval::run(&tp, preds)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
