//! Section VI-C: swap-overhead sensitivity.

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::overhead;
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let mut params = artifact_params();
    params.num_pairs = 6;
    let pts = overhead::run(&params, preds);
    println!(
        "\nSection VI-C — swap-overhead sensitivity\n\n{}",
        overhead::render(&pts)
    );

    let tp = timing_params();
    c.bench_function("overhead_sweep", |b| {
        b.iter(|| black_box(overhead::run(&tp, preds)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
