//! Figure 8: proposed vs Round Robin per-pair improvements.

use ampsched_bench::{artifact_params, criterion, predictors, timing_params};
use ampsched_experiments::common::{run_pair, sample_pairs, SchedKind};
use ampsched_experiments::fig78::{self, Reference};
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let preds = predictors();
    let sweep = fig78::run_sweep(&artifact_params(), preds);
    println!(
        "\nFigure 8 — proposed vs Round Robin\n\n{}",
        fig78::render_fig(&sweep, Reference::RoundRobin)
    );

    // Kernel: a single pair under Round Robin (the figure's baseline).
    let tp = timing_params();
    let pair = &sample_pairs(1, tp.seed)[0];
    c.bench_function("fig8_one_pair_round_robin", |b| {
        b.iter(|| black_box(run_pair(pair, &SchedKind::RoundRobin(1), preds, &tp)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
