//! Tables I and II: print the live core configurations and time the
//! simulator's raw cycle throughput on each core type (the "cost" of the
//! tables' hardware).

use ampsched_bench::{criterion, timing_params};
use ampsched_cpu::{Core, CoreConfig};
use ampsched_experiments::tables;
use ampsched_mem::MemSystem;
use ampsched_trace::{suite, TraceGenerator};
use ampsched_util::timer::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    println!("\nTable I — core structure sizes\n\n{}", tables::render_table_i());
    println!("Table II — execution units\n\n{}", tables::render_table_ii());

    let params = timing_params();
    let mut g = c.benchmark_group("tables_core_throughput");
    for (name, cfg) in [("fp_core", CoreConfig::fp_core()), ("int_core", CoreConfig::int_core())] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut core = Core::new(cfg.clone(), 0);
                let mut mem = MemSystem::new(params.system.mem, 1);
                let mut w =
                    TraceGenerator::for_thread(suite::by_name("pi").unwrap(), 3, 0);
                let mut committed = 0u64;
                for now in 0..50_000u64 {
                    committed += core.tick(now, &mut w, &mut mem) as u64;
                }
                black_box(committed)
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
