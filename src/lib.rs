//! # ampsched
//!
//! A full reproduction of **"Dynamic Thread Scheduling in Asymmetric
//! Multicores to Maximize Performance-per-Watt"** (Annamalai, Rodrigues,
//! Koren, Kundu — IPPS 2012) as a Rust workspace: the paper's dual-core
//! INT/FP asymmetric multicore (generalized to N-core × M-thread
//! topologies), its out-of-order core timing model, cache hierarchy,
//! Wattch-style power model, 37 statistical workload models, the paper's
//! fine-grained hardware scheduler, and every reference scheme and
//! experiment it is evaluated against.
//!
//! This facade crate re-exports the workspace under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `ampsched-isa` | micro-ops, registers, instruction mixes |
//! | [`workloads`] | `ampsched-trace` | the 37-benchmark suite + trace generators |
//! | [`mem`] | `ampsched-mem` | caches, shared L2, DRAM, prefetcher |
//! | [`cpu`] | `ampsched-cpu` | the out-of-order core model (Tables I/II) |
//! | [`power`] | `ampsched-power` | activity-based energy model |
//! | [`sched`] | `ampsched-core` | **the paper's contribution** + reference schedulers |
//! | [`system`] | `ampsched-system` | AMP topologies, systems, and run loops |
//! | [`metrics`] | `ampsched-metrics` | IPC/Watt, speedups, reporting |
//! | [`obs`] | `ampsched-obs` | logging, counters, spans, decision telemetry |
//! | [`experiments`] | `ampsched-experiments` | per-figure/table drivers |
//!
//! ## Quickstart
//!
//! ```
//! use ampsched::prelude::*;
//!
//! // Co-run equake (thread 0, starts on the FP core) with bitcount
//! // (thread 1, INT core) under the paper's proposed scheduler.
//! let workloads: [Box<dyn Workload>; 2] = [
//!     Box::new(TraceGenerator::for_thread(suite::by_name("equake").unwrap(), 42, 0)),
//!     Box::new(TraceGenerator::for_thread(suite::by_name("bitcount").unwrap(), 42, 1)),
//! ];
//! let mut system = DualCoreSystem::new(SystemConfig::default(), workloads);
//! let mut scheduler = ProposedScheduler::with_defaults();
//! let result = system.run(&mut scheduler, 200_000, 20_000_000);
//! let [ppw0, ppw1] = result.ipc_per_watt();
//! assert!(ppw0 > 0.0 && ppw1 > 0.0);
//! ```

pub use ampsched_core as sched;
pub use ampsched_cpu as cpu;
pub use ampsched_experiments as experiments;
pub use ampsched_isa as isa;
pub use ampsched_mem as mem;
pub use ampsched_metrics as metrics;
pub use ampsched_obs as obs;
pub use ampsched_power as power;
pub use ampsched_system as system;
pub use ampsched_trace as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ampsched_core::{
        Assignment, AssignmentMap, CampScheduler, CoreKind, CoreTraits, Decision, ExtendedConfig,
        ExtendedScheduler, HpePredictor, HpeScheduler, MatrixFineScheduler, PairAdapter,
        ProposedConfig, ProposedScheduler, RatioMatrix, RatioSurface, RoundRobinScheduler,
        SamplingScheduler, Scheduler, StaticScheduler, SwapRules, ThreadWindow, TopoDecision,
        TopoHpe, TopoProposed, TopoRoundRobin, TopoScheduler, TopoSnapshot, TopoStatic,
        TpeScheduler, WindowSnapshot,
    };
    pub use ampsched_cpu::{Core, CoreConfig, CoreFlavor};
    pub use ampsched_mem::{MemConfig, MemSystem};
    pub use ampsched_metrics::{
        geometric_speedup, improvement_pct, weighted_speedup, ThreadMetrics,
    };
    pub use ampsched_power::{EnergyAccount, EnergyModel};
    pub use ampsched_system::{
        DualCoreSystem, IntervalSample, MulticoreSystem, RunResult, SingleCoreRunner, SystemConfig,
        Topology, TopoRunResult,
    };
    pub use ampsched_trace::{suite, BenchmarkSpec, PhaseSpec, Suite, TraceGenerator, Workload};
}
