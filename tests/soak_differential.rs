//! Long-horizon system-level soak: the fast kernel (SoA tick, issue
//! horizons, wake caches, quiescence skip-ahead) must stay bit-identical
//! to the frozen reference kernel over *millions* of cycles of real
//! multiprogrammed execution — through epoch boundaries, window
//! decisions, and swap storms that flush pipelines mid-flight.
//!
//! Two layers:
//!
//! 1. A deterministic grid (3 seeds × 3 scheduler families, ≥1M cycles
//!    each in release) driven in lockstep chunks, comparing per-core
//!    state digests and committed-instruction counts at every checkpoint
//!    so a divergence is localized to a few thousand cycles, not a
//!    40-second run.
//! 2. A randomized scenario sweep under the property harness: shrinking
//!    on failure, with failing inputs persisted to
//!    `results/corpus/soak_differential.json` and replayed first on
//!    every later run.

use ampsched::prelude::*;
use ampsched_util::check::{Checker, Source};
use ampsched_util::prop_assert;

/// Release soak horizon (per combo); debug builds shrink ~20×, keeping
/// `cargo test` affordable while release CI still soaks ≥1M cycles.
const SOAK_CYCLES: u64 = if cfg!(debug_assertions) { 60_000 } else { 1_200_000 };

/// Lockstep checkpoint granularity: both systems advance this many
/// cycles, then digests must match. Chunks also bound how far a
/// divergence can hide.
const CHUNK: u64 = 4096;

/// Swap-storm scheduler: requests a swap at *every* decision point, the
/// worst case for swap bookkeeping — each swap flushes both pipelines,
/// drops quiescence certificates, and restarts the wake caches.
struct StormScheduler {
    window: u64,
}

impl Scheduler for StormScheduler {
    fn name(&self) -> &'static str {
        "storm"
    }
    fn window_insts(&self) -> Option<u64> {
        Some(self.window)
    }
    fn on_window(&mut self, _snap: &WindowSnapshot) -> Decision {
        Decision::Swap
    }
    fn on_epoch(&mut self, _snap: &WindowSnapshot) -> Decision {
        Decision::Swap
    }
}

/// Factory for fresh scheduler instances — each soak side gets its own.
type MakeSched = dyn Fn() -> Box<dyn Scheduler>;

fn pair(a: &str, b: &str, seed: u64) -> [Box<dyn Workload>; 2] {
    [
        Box::new(TraceGenerator::for_thread(
            suite::by_name(a).expect("benchmark"),
            seed,
            0,
        )),
        Box::new(TraceGenerator::for_thread(
            suite::by_name(b).expect("benchmark"),
            seed,
            1,
        )),
    ]
}

fn system(sim_path: ampsched_system::SimPath, workloads: [Box<dyn Workload>; 2]) -> DualCoreSystem {
    DualCoreSystem::new(
        SystemConfig {
            // Short epochs so a soak crosses many epoch decisions.
            epoch_cycles: 50_000,
            sim_path,
            ..SystemConfig::default()
        },
        workloads,
    )
}

/// Drive a fast and a reference system over the same workloads in
/// lockstep chunks of `CHUNK` cycles, asserting digest + counter
/// equality at every checkpoint. Both systems are chunked identically,
/// so the (chunk-relative) window/epoch bookkeeping matches by
/// construction. Returns the checkpoint count.
fn soak_lockstep(
    a: &str,
    b: &str,
    seed: u64,
    make_sched: &MakeSched,
    cycles: u64,
    mut on_mismatch: impl FnMut(String) -> Result<(), String>,
) -> Result<u64, String> {
    let mut fast = system(ampsched_system::SimPath::Fast, pair(a, b, seed));
    let mut refc = system(ampsched_system::SimPath::Reference, pair(a, b, seed));
    let mut fast_sched = make_sched();
    let mut ref_sched = make_sched();
    let mut checkpoints = 0u64;
    while fast.cycle() < cycles {
        // Instruction target far above what a chunk can commit: the
        // chunk boundary is the cycle budget, identical on both sides.
        fast.run(&mut *fast_sched, u64::MAX / 2, CHUNK);
        refc.run(&mut *ref_sched, u64::MAX / 2, CHUNK);
        checkpoints += 1;
        let cp = format!(
            "pair {a}+{b} seed {seed} sched {} cycle {}",
            fast_sched.name(),
            fast.cycle()
        );
        if fast.cycle() != refc.cycle() {
            on_mismatch(format!("cycle counts diverged at checkpoint: {cp}"))?;
        }
        if fast.core_digests() != refc.core_digests() {
            on_mismatch(format!("core state digests diverged: {cp}"))?;
        }
        if fast.thread_instructions() != refc.thread_instructions() {
            on_mismatch(format!("committed instruction counts diverged: {cp}"))?;
        }
        if fast.swaps() != refc.swaps() {
            on_mismatch(format!("swap counts diverged: {cp}"))?;
        }
        if fast.assignment() != refc.assignment() {
            on_mismatch(format!("assignments diverged: {cp}"))?;
        }
    }
    Ok(checkpoints)
}

/// The deterministic grid: 3 seeds × 3 scheduler families, each soaked
/// for `SOAK_CYCLES` with per-chunk digest equality. The storm scheduler
/// swaps at every window (an intentional worst case); round-robin swaps
/// every epoch; the proposed scheme swaps on its own rules.
#[test]
fn soak_grid_fast_matches_reference() {
    let pairs = [("gcc", "equake"), ("mcf", "swim"), ("intstress", "fpstress")];
    let schedulers: [(&str, &MakeSched); 3] = [
        ("storm", &|| Box::new(StormScheduler { window: 20_000 })),
        ("rr", &|| Box::new(RoundRobinScheduler::every_epoch())),
        ("static", &|| Box::new(StaticScheduler)),
    ];
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let seed = 2012 + i as u64;
        for (label, make) in &schedulers {
            let checkpoints = soak_lockstep(a, b, seed, *make, SOAK_CYCLES, Err)
                .unwrap_or_else(|msg| panic!("[{label}] {msg}"));
            assert!(
                checkpoints >= SOAK_CYCLES / CHUNK,
                "soak must cover the full horizon ({checkpoints} checkpoints)"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// N-core tier: the generalized MulticoreSystem soaked fast-vs-reference
// on a big.LITTLE 4+4 shape under the zoo schedulers that move threads
// the most (TPE re-ranks every epoch, CAMP-dynamic re-matches every
// epoch, round-robin rotates unconditionally).
// ---------------------------------------------------------------------------

/// Factory for fresh generalized-scheduler instances.
type MakeTopoSched = dyn Fn() -> Box<dyn TopoScheduler>;

const NCORE_BENCHES: [&str; 8] =
    ["gcc", "equake", "mcf", "swim", "gsm", "intstress", "fpstress", "branchstress"];

fn topo_workloads(benches: &[&str], seed: u64) -> Vec<Box<dyn Workload>> {
    benches
        .iter()
        .enumerate()
        .map(|(t, name)| {
            Box::new(TraceGenerator::for_thread(
                suite::by_name(name).expect("benchmark"),
                seed,
                t,
            )) as Box<dyn Workload>
        })
        .collect()
}

fn topo_system(
    sim_path: ampsched_system::SimPath,
    topo: &Topology,
    benches: &[&str],
    seed: u64,
) -> MulticoreSystem {
    MulticoreSystem::new(
        SystemConfig {
            epoch_cycles: 50_000,
            sim_path,
            ..SystemConfig::default()
        },
        topo,
        topo_workloads(benches, seed),
    )
}

/// The generalized form of [`soak_lockstep`]: same chunked cadence, plus
/// migration totals and the full thread→core assignment at every
/// checkpoint.
fn topo_soak_lockstep(
    topo: &Topology,
    benches: &[&str],
    seed: u64,
    make_sched: &MakeTopoSched,
    cycles: u64,
) -> Result<u64, String> {
    let mut fast = topo_system(ampsched_system::SimPath::Fast, topo, benches, seed);
    let mut refc = topo_system(ampsched_system::SimPath::Reference, topo, benches, seed);
    let mut fast_sched = make_sched();
    let mut ref_sched = make_sched();
    let mut checkpoints = 0u64;
    while fast.cycle() < cycles {
        fast.run(&mut *fast_sched, u64::MAX / 2, CHUNK);
        refc.run(&mut *ref_sched, u64::MAX / 2, CHUNK);
        checkpoints += 1;
        let cp = format!(
            "topology {} seed {seed} sched {} cycle {}",
            topo.label(),
            fast_sched.name(),
            fast.cycle()
        );
        if fast.cycle() != refc.cycle() {
            return Err(format!("cycle counts diverged at checkpoint: {cp}"));
        }
        if fast.core_digests() != refc.core_digests() {
            return Err(format!("core state digests diverged: {cp}"));
        }
        if fast.thread_instructions() != refc.thread_instructions() {
            return Err(format!("committed instruction counts diverged: {cp}"));
        }
        if fast.swaps() != refc.swaps() || fast.migrations() != refc.migrations() {
            return Err(format!("swap/migration counts diverged: {cp}"));
        }
        if fast.assignment() != refc.assignment() {
            return Err(format!("assignments diverged: {cp}"));
        }
    }
    Ok(checkpoints)
}

/// Deterministic N-core grid: a stock 4+4 big.LITTLE running eight
/// threads, soaked for the full horizon under each mobile scheduler.
#[test]
fn soak_ncore_grid_fast_matches_reference() {
    let topo = Topology::big_little(4, 4, 8);
    let schedulers: [(&str, &MakeTopoSched); 3] = [
        ("tpe", &|| Box::new(TpeScheduler::new())),
        ("camp-dynamic", &|| Box::new(CampScheduler::camp_dynamic(8))),
        ("rr", &|| Box::new(TopoRoundRobin::every_epoch())),
    ];
    for (i, (label, make)) in schedulers.iter().enumerate() {
        let checkpoints =
            topo_soak_lockstep(&topo, &NCORE_BENCHES, 2012 + i as u64, *make, SOAK_CYCLES)
                .unwrap_or_else(|msg| panic!("[{label}] {msg}"));
        assert!(
            checkpoints >= SOAK_CYCLES / CHUNK,
            "soak must cover the full horizon ({checkpoints} checkpoints)"
        );
    }
}

#[derive(Debug, Clone)]
struct NcoreScenario {
    /// Benchmark per thread (fuzzed length 5–8: both under- and
    /// oversubscription of the 4+4 shape).
    benches: Vec<&'static str>,
    seed: u64,
    // 0 = tpe, 1 = camp-dynamic, 2 = round-robin.
    sched: u8,
    cycles: u64,
}

fn gen_ncore_scenario(s: &mut Source) -> NcoreScenario {
    let n_threads = s.usize_in(5, 9);
    NcoreScenario {
        benches: (0..n_threads)
            .map(|_| NCORE_BENCHES[s.usize_in(0, NCORE_BENCHES.len())])
            .collect(),
        seed: s.u64_in(1, 1 << 32),
        sched: s.u8_in(0, 3),
        cycles: s.u64_in(50_000, if cfg!(debug_assertions) { 60_000 } else { 300_000 }),
    }
}

/// Randomized N-core scenarios on the fuzzed 4+4 topology: random thread
/// sets, trace seeds, scheduler, and horizon, shrunk and corpus-persisted
/// alongside the pair scenarios.
#[test]
fn soak_ncore_fuzzed_scenarios_fast_matches_reference() {
    Checker::new(0x50a7_0002)
        .cases(if cfg!(debug_assertions) { 3 } else { 8 })
        .suite("soak_differential")
        .run("ncore_soak_scenarios", gen_ncore_scenario, |sc| {
            let threads = sc.benches.len();
            let topo = Topology::big_little(4, 4, threads);
            let make: Box<MakeTopoSched> = match sc.sched {
                0 => Box::new(|| Box::new(TpeScheduler::new()) as Box<dyn TopoScheduler>),
                1 => Box::new(move || {
                    Box::new(CampScheduler::camp_dynamic(threads)) as Box<dyn TopoScheduler>
                }),
                _ => Box::new(|| Box::new(TopoRoundRobin::every_epoch()) as Box<dyn TopoScheduler>),
            };
            match topo_soak_lockstep(&topo, &sc.benches, sc.seed, &*make, sc.cycles) {
                Ok(n) => prop_assert!(n > 0, "soak must advance"),
                Err(msg) => prop_assert!(false, "{}", msg),
            }
            Ok(())
        });
}

#[derive(Debug, Clone)]
struct SoakScenario {
    bench_a: &'static str,
    bench_b: &'static str,
    seed: u64,
    // 0 = storm, 1 = round-robin, 2 = static.
    sched: u8,
    storm_window: u64,
    cycles: u64,
}

fn gen_scenario(s: &mut Source) -> SoakScenario {
    let names = ["gcc", "equake", "mcf", "swim", "gsm", "intstress", "fpstress", "branchstress"];
    SoakScenario {
        bench_a: names[s.usize_in(0, names.len())],
        bench_b: names[s.usize_in(0, names.len())],
        seed: s.u64_in(1, 1 << 32),
        sched: s.u8_in(0, 3),
        storm_window: s.u64_in(2_000, 40_000),
        cycles: s.u64_in(50_000, if cfg!(debug_assertions) { 60_000 } else { 400_000 }),
    }
}

/// Randomized scenarios under the property harness: random benchmark
/// pairs, trace seeds, scheduler, storm cadence, and horizon. On failure
/// the harness shrinks toward a minimal scenario and records it in the
/// corpus (`results/corpus/soak_differential.json`), so regressions
/// replay instantly in later runs.
#[test]
fn soak_fuzzed_scenarios_fast_matches_reference() {
    Checker::new(0x50a7_0001)
        .cases(if cfg!(debug_assertions) { 4 } else { 10 })
        .suite("soak_differential")
        .run("soak_scenarios", gen_scenario, |sc| {
            let make: Box<MakeSched> = match sc.sched {
                0 => {
                    let w = sc.storm_window;
                    Box::new(move || Box::new(StormScheduler { window: w }) as Box<dyn Scheduler>)
                }
                1 => Box::new(|| Box::new(RoundRobinScheduler::every_epoch()) as Box<dyn Scheduler>),
                _ => Box::new(|| Box::new(StaticScheduler) as Box<dyn Scheduler>),
            };
            let checkpoints =
                soak_lockstep(sc.bench_a, sc.bench_b, sc.seed, &*make, sc.cycles, Err);
            match checkpoints {
                Ok(n) => prop_assert!(n > 0, "soak must advance"),
                Err(msg) => prop_assert!(false, "{}", msg),
            }
            Ok(())
        });
}
