//! Shape tests against the paper's qualitative claims, at reduced scale.
//! (EXPERIMENTS.md records the full-scale paper-vs-measured numbers.)

use ampsched::experiments::common::{Params, SchedKind};
use ampsched::experiments::{fig1, fig78, profiling};
use ampsched::sched::{paper, ProposedConfig, ProposedScheduler, Scheduler};

fn quick(n_pairs: usize) -> Params {
    let mut p = Params::quick();
    p.num_pairs = n_pairs;
    p
}

#[test]
fn golden_paper_constants_are_pinned() {
    // The reconstructed headline numbers (PAPER.md §0). These are golden
    // values: a change here is a change to what the repo claims the
    // paper says, not a tuning knob.
    assert_eq!(paper::WINDOW_INSTS, 1000);
    assert_eq!(paper::HISTORY_DEPTH, 5);
    assert_eq!(paper::DECISION_INTERVAL_INSTS, 5000);
    assert_eq!(paper::RUN_INSTS, 5_000_000);
    assert_eq!(paper::NUM_PAIRS, 80);
    assert_eq!(paper::FAIRNESS_INTERVAL_CYCLES, 4_000_000);
    // The perf/Watt improvement band vs HPE: 8.9% (average) to 12.9%
    // (best), with the winning window/history config at 10.5%.
    assert_eq!(paper::IMPROVEMENT_VS_HPE_AVG_PCT, 8.9);
    assert_eq!(paper::IMPROVEMENT_VS_HPE_BEST_CONFIG_PCT, 10.5);
    assert_eq!(paper::IMPROVEMENT_VS_HPE_BEST_PCT, 12.9);
}

#[test]
fn golden_defaults_match_paper_constants() {
    // The proposed scheduler's defaults are exactly the paper's Figure 6
    // optimum and the 2ms fairness interval.
    let cfg = ProposedConfig::default();
    assert_eq!(cfg.window, paper::WINDOW_INSTS);
    assert_eq!(cfg.history_depth, paper::HISTORY_DEPTH);
    assert_eq!(cfg.fairness_interval_cycles, paper::FAIRNESS_INTERVAL_CYCLES);
    // window_insts() is the *pair* window (both threads commit), i.e.
    // twice the per-thread monitoring window.
    let s = ProposedScheduler::with_defaults();
    assert_eq!(s.window_insts(), Some(2 * paper::WINDOW_INSTS));
    // An effective swap decision needs history_depth consistent windows:
    // 5000 committed instructions per thread.
    assert_eq!(
        cfg.window * cfg.history_depth as u64,
        paper::DECISION_INTERVAL_INSTS
    );
    // Full-scale experiment defaults reproduce the paper's run length
    // and pair count.
    let p = Params::default();
    assert_eq!(p.run_insts, paper::RUN_INSTS);
    assert_eq!(p.num_pairs, paper::NUM_PAIRS);
    assert_eq!(p.seed, 2012);
}

#[test]
fn figure_1_preferences_hold() {
    let rows = fig1::run(&quick(0));
    let get = |n: &str| rows.iter().find(|r| r.workload == n).expect("row").ratio();
    // Core A (FP) preferred:
    assert!(get("fpstress") < 0.8, "fpstress B/A = {}", get("fpstress"));
    assert!(get("equake") < 0.9, "equake B/A = {}", get("equake"));
    // Core B (INT) preferred:
    assert!(get("CRC32") > 1.4, "CRC32 B/A = {}", get("CRC32"));
    assert!(get("intstress") > 1.4);
    // No decisive preference:
    assert!((0.6..1.6).contains(&get("gcc")));
    assert!((0.6..1.6).contains(&get("mcf")));
}

#[test]
fn headline_ordering_proposed_beats_hpe_beats_nothing() {
    // At reduced scale the averages differ from the paper's, but the
    // *ordering* — proposed ≥ HPE on average, proposed ≥ RR on average,
    // with only a minority of losing pairs — must hold.
    let params = quick(10);
    let preds = profiling::quick_predictors().clone();
    let sweep = fig78::run_sweep(&params, &preds);
    let (w_hpe, g_hpe) = sweep.average(fig78::Reference::Hpe);
    let (w_rr, g_rr) = sweep.average(fig78::Reference::RoundRobin);
    assert!(w_hpe > 0.0, "proposed must beat HPE on average: {w_hpe:+.1}%");
    assert!(w_rr > 0.0, "proposed must beat RR on average: {w_rr:+.1}%");
    assert!(g_hpe.is_finite() && g_rr.is_finite());
    assert!(
        sweep.loss_fraction(fig78::Reference::Hpe) <= 0.4,
        "most pairs should not lose to HPE"
    );
}

#[test]
fn swap_rate_is_well_under_one_percent() {
    // Section VII: "in much less than 1% of the decision-making
    // points, swapping of threads actually happened".
    let params = quick(8);
    let preds = profiling::quick_predictors().clone();
    let sweep = fig78::run_sweep(&params, &preds);
    let rate = sweep.proposed_swap_rate();
    assert!(
        rate < 0.01,
        "swap rate {:.3}% should be well under 1%",
        100.0 * rate
    );
}

#[test]
fn matrix_and_surface_predictors_agree_on_strong_affinities() {
    let preds = profiling::quick_predictors();
    for (int_pct, fp_pct) in [(70.0, 1.0), (60.0, 3.0)] {
        assert!(preds.matrix.lookup(int_pct, fp_pct) > 1.0);
        assert!(preds.surface.predict(int_pct, fp_pct) > 1.0);
    }
    for (int_pct, fp_pct) in [(10.0, 45.0), (12.0, 35.0)] {
        assert!(preds.matrix.lookup(int_pct, fp_pct) < 1.0);
        assert!(preds.surface.predict(int_pct, fp_pct) < 1.0);
    }
}

#[test]
fn hpe_with_either_predictor_beats_static_on_misplaced_pairs() {
    use ampsched::experiments::common::{run_pair, Pair};
    use ampsched::metrics::weighted_speedup;
    use ampsched::workloads::suite;
    let params = quick(0);
    let preds = profiling::quick_predictors().clone();
    // Build an intentionally misplaced pair: INT-heavy thread on FP core.
    let pair = Pair {
        a: suite::by_name("sha").expect("bench"),
        b: suite::by_name("ammp").expect("bench"),
        seed: 77,
    };
    let stat = run_pair(&pair, &SchedKind::Static, &preds, &params);
    for kind in [SchedKind::HpeMatrix, SchedKind::HpeSurface] {
        let hpe = run_pair(&pair, &kind, &preds, &params);
        let s = weighted_speedup(&hpe.ipc_per_watt(), &stat.ipc_per_watt());
        // HPE's first decision only comes one full epoch into the run, so
        // at this reduced scale the gain is modest — but it must exist.
        assert!(
            s > 1.02,
            "{kind:?} should fix the misplacement: speedup {s:.3}"
        );
        assert!(hpe.swaps >= 1);
    }
}
