//! Property-based tests over the core data structures and cross-crate
//! invariants, on the in-tree `util::check` harness with a fixed seed.

use ampsched::isa::{InstMix, MixCounts, OpClass};
use ampsched::mem::{Cache, CacheConfig};
use ampsched::metrics::{geometric_speedup, weighted_speedup};
use ampsched::prelude::*;
use ampsched::sched::{MajorityVote, ProfilePoint, RatioMatrix};
use ampsched_util::check::{Checker, Source};
use ampsched_util::{prop_assert, prop_assert_eq, prop_assert_ne};

const SEED: u64 = 0xa3b5_0006;

fn checker() -> Checker {
    Checker::new(SEED).cases(64).suite("workspace_props")
}

fn arb_mix(s: &mut Source) -> InstMix {
    // Nine positive weights; at least one strictly positive is guaranteed
    // by construction (a degenerate all-zero draw — which shrinking loves
    // to produce — falls back to pure IntAlu rather than rejecting).
    let mut w = s.vec_with(9, 9, |s| s.f64_in(0.0, 1.0));
    if w.iter().sum::<f64>() <= 1e-9 {
        w[0] = 1.0;
    }
    InstMix::from_weights(&[
        (OpClass::IntAlu, w[0]),
        (OpClass::IntMul, w[1]),
        (OpClass::IntDiv, w[2]),
        (OpClass::FpAlu, w[3]),
        (OpClass::FpMul, w[4]),
        (OpClass::FpDiv, w[5]),
        (OpClass::Load, w[6]),
        (OpClass::Store, w[7]),
        (OpClass::Branch, w[8]),
    ])
}

#[test]
fn mix_normalization_is_a_distribution() {
    checker().run("mix_normalization_is_a_distribution", arb_mix, |mix| {
        let probs = mix.normalized();
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let cdf = mix.cdf();
        prop_assert_eq!(cdf[8], 1.0);
        for w in cdf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        Ok(())
    });
}

#[test]
fn generated_stream_matches_mix_within_tolerance() {
    checker().run(
        "generated_stream_matches_mix_within_tolerance",
        |s: &mut Source| (arb_mix(s), s.u64_in(0, 1000)),
        |(mix, seed)| {
            let spec = BenchmarkSpec::new(
                "prop",
                Suite::Synthetic,
                vec![PhaseSpec::new("p", *mix, 3.0, 0.05, 0.4, 8192, 0.7, 4096, 1 << 40)],
            );
            let mut g = TraceGenerator::new(spec, *seed, 0, 1 << 20);
            let mut counts = MixCounts::new();
            for _ in 0..6000 {
                counts.record(g.next_op().class);
            }
            let want_int = 100.0 * mix.int_fraction();
            let want_fp = 100.0 * mix.fp_fraction();
            prop_assert!(
                (counts.int_pct() - want_int).abs() < 5.0,
                "observed %INT {} vs spec {}",
                counts.int_pct(),
                want_int
            );
            prop_assert!((counts.fp_pct() - want_fp).abs() < 5.0);
            Ok(())
        },
    );
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    checker().run(
        "cache_occupancy_never_exceeds_capacity",
        |s: &mut Source| {
            let accesses = s.vec_with(1, 499, |s| (s.u64_in(0, 1_000_000), s.bool()));
            let assoc = s.u32_in(1, 8);
            (accesses, assoc)
        },
        |(accesses, assoc)| {
            let cfg = CacheConfig::new(64 * 16 * *assoc as u64, 64, *assoc);
            let mut c = Cache::new(cfg);
            for (addr, write) in accesses {
                c.access(addr & !7, *write);
            }
            let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
            prop_assert!(c.resident_lines() <= capacity);
            let s = c.stats();
            prop_assert!(s.hits + s.misses > 0);
            prop_assert!(s.writebacks <= s.misses, "writebacks only happen on miss evictions");
            Ok(())
        },
    );
}

#[test]
fn cache_access_after_access_hits() {
    checker().run(
        "cache_access_after_access_hits",
        |s: &mut Source| s.u64_in(0, 1_000_000_000),
        |&addr| {
            let mut c = Cache::new(CacheConfig::new(4096, 64, 2));
            c.access(addr, false);
            prop_assert!(c.access(addr, false).hit);
            prop_assert!(c.contains(addr));
            Ok(())
        },
    );
}

#[test]
fn majority_vote_agrees_with_direct_count() {
    checker().run(
        "majority_vote_agrees_with_direct_count",
        |s: &mut Source| {
            let votes = s.vec_with(1, 39, |s| s.bool());
            let depth = s.usize_in(1, 10);
            (votes, depth)
        },
        |(votes, depth)| {
            let depth = *depth;
            let mut v = MajorityVote::new(depth);
            for &b in votes {
                v.push(b);
            }
            let expected = if votes.len() < depth {
                false
            } else {
                let yes = votes[votes.len() - depth..].iter().filter(|b| **b).count();
                2 * yes > depth
            };
            prop_assert_eq!(v.majority(), expected);
            Ok(())
        },
    );
}

#[test]
fn speedup_identities() {
    checker().run(
        "speedup_identities",
        |s: &mut Source| {
            let base = s.vec_with(2, 2, |s| s.f64_in(0.01, 10.0));
            let scale = s.f64_in(0.1, 10.0);
            (base, scale)
        },
        |(base, scale)| {
            let scale = *scale;
            // Scaling both threads by the same factor gives exactly that
            // factor under both means.
            let new: Vec<f64> = base.iter().map(|b| b * scale).collect();
            let w = weighted_speedup(&new, base);
            let g = geometric_speedup(&new, base);
            prop_assert!((w - scale).abs() < 1e-9);
            prop_assert!((g - scale).abs() < 1e-9);
            // AM-GM: weighted >= geometric always.
            let mixed = vec![base[0] * scale, base[1] / scale];
            let wm = weighted_speedup(&mixed, base);
            let gm = geometric_speedup(&mixed, base);
            prop_assert!(wm >= gm - 1e-12);
            Ok(())
        },
    );
}

#[test]
fn ratio_matrix_lookup_is_total() {
    checker().run(
        "ratio_matrix_lookup_is_total",
        |s: &mut Source| {
            let pts = s.vec_with(1, 59, |s| {
                (s.f64_in(0.0, 100.0), s.f64_in(0.0, 100.0), s.f64_in(0.1, 5.0))
            });
            let q_int = s.f64_in(-10.0, 110.0);
            let q_fp = s.f64_in(-10.0, 110.0);
            (pts, q_int, q_fp)
        },
        |(pts, q_int, q_fp)| {
            let points: Vec<ProfilePoint> = pts
                .iter()
                .map(|&(i, f, r)| ProfilePoint {
                    int_pct: i,
                    fp_pct: f,
                    ppw_int_core: r,
                    ppw_fp_core: 1.0,
                })
                .collect();
            let m = RatioMatrix::from_points(&points);
            let v = m.lookup(*q_int, *q_fp);
            prop_assert!(v.is_finite() && v > 0.0, "lookup must always return a usable ratio");
            Ok(())
        },
    );
}

#[test]
fn window_percentages_partition() {
    checker().run(
        "window_percentages_partition",
        |s: &mut Source| s.vec_with(9, 9, |s| s.u64_in(0, 500)),
        |counts| {
            let mut mc = MixCounts::new();
            for (i, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    mc.record(ampsched::isa::ops::ALL_OP_CLASSES[i]);
                }
            }
            if mc.total() > 0 {
                let sum = mc.int_pct() + mc.fp_pct() + mc.mem_pct() + mc.branch_pct();
                prop_assert!((sum - 100.0).abs() < 1e-9, "domains partition the stream: {sum}");
            }
            Ok(())
        },
    );
}

#[test]
fn assignment_roundtrip() {
    checker().run(
        "assignment_roundtrip",
        |s: &mut Source| (s.bool(), s.usize_in(0, 2)),
        |&(swapped, t)| {
            let a = Assignment { swapped };
            prop_assert_eq!(a.thread_on(a.core_of(t)), t);
            prop_assert_eq!(a.toggled().toggled(), a);
            prop_assert_ne!(a.core_of(0), a.core_of(1));
            Ok(())
        },
    );
}
