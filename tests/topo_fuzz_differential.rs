//! Topology-fuzzed differential battery: the fast kernel must stay
//! bit-identical to the frozen reference kernel on *arbitrary* machine
//! shapes, not just the paper's 2×2 pair — random core counts (1–8),
//! thread counts (1–16, including heavy oversubscription), and random
//! per-core microarchitectures down to the degenerate corners (size-1
//! issue queues, ROBs barely wider than dispatch, single-register rename
//! pools) where quiescence certificates and wake caches are most likely
//! to slip.
//!
//! Each scenario drives a fast and a reference [`MulticoreSystem`] over
//! the same workloads in lockstep chunks, comparing per-core state
//! digests, committed-instruction counts, swap/migration totals, and the
//! full thread→core assignment at every checkpoint. Failures shrink and
//! persist to `results/corpus/topo_fuzz_differential.json` so
//! regressions replay first on later runs.

use ampsched::prelude::*;
use ampsched_cpu::FuSpec;
use ampsched_util::check::{Checker, Source};
use ampsched_util::prop_assert;

/// Lockstep checkpoint granularity (same as the pair soak).
const CHUNK: u64 = 2048;

const BENCHES: [&str; 8] =
    ["gcc", "equake", "mcf", "swim", "gsm", "intstress", "fpstress", "branchstress"];

/// A random *valid* core shape, mirroring the cpu-crate config fuzzer:
/// every structural size drawn from the bottom of its legal range up to
/// (a bit past) the paper's Table I values.
fn random_core(s: &mut Source) -> CoreConfig {
    let mut c = if s.bool() { CoreConfig::fp_core() } else { CoreConfig::int_core() };
    c.name = "FUZZ";
    c.dispatch_width = s.u8_in(1, 5);
    c.commit_width = s.u8_in(1, 7);
    c.issue_width_int = s.u8_in(1, 5);
    c.issue_width_fp = s.u8_in(1, 5);
    c.rob_size = s.u64_in(c.dispatch_width as u64, 48) as u16;
    c.int_regs = s.u64_in(33, 80) as u16;
    c.fp_regs = s.u64_in(33, 80) as u16;
    c.int_isq = s.u64_in(1, 24) as u16;
    c.fp_isq = s.u64_in(1, 16) as u16;
    c.lsq_loads = s.u64_in(1, 12) as u16;
    c.lsq_stores = s.u64_in(1, 12) as u16;
    for fu in &mut c.fu {
        *fu = FuSpec::new(s.u8_in(1, 3), s.u8_in(1, 16), s.bool());
    }
    c.mispredict_penalty = s.u8_in(1, 20);
    c.validate();
    c
}

/// Window-cadence storm for arbitrary shapes: permutes the two
/// lowest-indexed *running* threads every window (the parked set is an
/// epoch-level decision), and exchanges a running thread with a parked
/// one at every epoch — the worst case for migration bookkeeping on
/// oversubscribed topologies.
struct TopoStorm {
    window: u64,
}

impl TopoScheduler for TopoStorm {
    fn name(&self) -> &'static str {
        "topo-storm"
    }
    fn window_insts(&self) -> Option<u64> {
        Some(self.window)
    }
    fn on_window(&mut self, snap: &TopoSnapshot) -> TopoDecision {
        let running: Vec<usize> =
            (0..snap.threads.len()).filter(|&t| snap.assignment.core_of(t).is_some()).collect();
        if running.len() < 2 {
            return TopoDecision::Stay;
        }
        let mut next = snap.assignment.clone();
        next.swap_threads(running[0], running[1]);
        TopoDecision::Reassign(next)
    }
    fn on_epoch(&mut self, snap: &TopoSnapshot) -> TopoDecision {
        let parked = snap.assignment.parked();
        let running: Vec<usize> =
            (0..snap.threads.len()).filter(|&t| snap.assignment.core_of(t).is_some()).collect();
        let mut next = snap.assignment.clone();
        match (running.first(), parked.first()) {
            (Some(&r), Some(&p)) => next.swap_threads(r, p),
            (Some(&a), None) if running.len() >= 2 => next.swap_threads(a, running[1]),
            _ => return TopoDecision::Stay,
        }
        TopoDecision::Reassign(next)
    }
}

#[derive(Debug, Clone)]
struct TopoScenario {
    cores: Vec<CoreConfig>,
    /// Benchmark name per thread (length = thread count).
    benches: Vec<&'static str>,
    seed: u64,
    /// 0 = storm, 1 = round-robin, 2 = tpe, 3 = camp-dynamic, 4 = static.
    sched: u8,
    storm_window: u64,
    epoch_cycles: u64,
    cycles: u64,
}

fn gen_scenario(s: &mut Source) -> TopoScenario {
    let n_cores = s.usize_in(1, 9);
    let n_threads = s.usize_in(1, 17);
    TopoScenario {
        cores: (0..n_cores).map(|_| random_core(s)).collect(),
        benches: (0..n_threads).map(|_| *s.choice(&BENCHES)).collect(),
        seed: s.u64_in(1, 1 << 32),
        sched: s.u8_in(0, 5),
        storm_window: s.u64_in(1_000, 20_000),
        epoch_cycles: s.u64_in(5_000, 25_000),
        cycles: s.u64_in(20_000, if cfg!(debug_assertions) { 40_000 } else { 120_000 }),
    }
}

fn workloads(sc: &TopoScenario) -> Vec<Box<dyn Workload>> {
    sc.benches
        .iter()
        .enumerate()
        .map(|(t, name)| {
            Box::new(TraceGenerator::for_thread(
                suite::by_name(name).expect("benchmark"),
                sc.seed,
                t,
            )) as Box<dyn Workload>
        })
        .collect()
}

fn make_sched(sc: &TopoScenario) -> Box<dyn TopoScheduler> {
    match sc.sched {
        0 => Box::new(TopoStorm { window: sc.storm_window }),
        1 => Box::new(TopoRoundRobin::every_epoch()),
        2 => Box::new(TpeScheduler::new()),
        3 => Box::new(CampScheduler::camp_dynamic(sc.benches.len())),
        _ => Box::new(TopoStatic),
    }
}

fn system(sc: &TopoScenario, sim_path: ampsched_system::SimPath) -> MulticoreSystem {
    let topo = Topology::new(sc.cores.clone(), sc.benches.len());
    MulticoreSystem::new(
        SystemConfig {
            epoch_cycles: sc.epoch_cycles,
            sim_path,
            ..SystemConfig::default()
        },
        &topo,
        workloads(sc),
    )
}

/// Drive fast and reference systems over the scenario in lockstep
/// chunks, returning the first divergence as an error.
fn lockstep(sc: &TopoScenario) -> Result<u64, String> {
    let mut fast = system(sc, ampsched_system::SimPath::Fast);
    let mut refc = system(sc, ampsched_system::SimPath::Reference);
    let mut fast_sched = make_sched(sc);
    let mut ref_sched = make_sched(sc);
    let mut checkpoints = 0u64;
    while fast.cycle() < sc.cycles {
        fast.run(&mut *fast_sched, u64::MAX / 2, CHUNK);
        refc.run(&mut *ref_sched, u64::MAX / 2, CHUNK);
        checkpoints += 1;
        let cp = format!(
            "{} cores x {} threads sched {} seed {} cycle {}",
            sc.cores.len(),
            sc.benches.len(),
            fast_sched.name(),
            sc.seed,
            fast.cycle()
        );
        if fast.cycle() != refc.cycle() {
            return Err(format!("cycle counts diverged: {cp}"));
        }
        if fast.core_digests() != refc.core_digests() {
            return Err(format!("core state digests diverged: {cp}"));
        }
        if fast.thread_instructions() != refc.thread_instructions() {
            return Err(format!("committed instruction counts diverged: {cp}"));
        }
        if fast.swaps() != refc.swaps() || fast.migrations() != refc.migrations() {
            return Err(format!("swap/migration counts diverged: {cp}"));
        }
        if fast.assignment() != refc.assignment() {
            return Err(format!("assignments diverged: {cp}"));
        }
    }
    Ok(checkpoints)
}

/// The fuzzed battery: ≥64 random topologies in release (a scaled-down
/// sample under `cargo test` in debug), every one bit-identical between
/// the fast and reference kernels.
#[test]
fn fuzzed_topologies_fast_matches_reference() {
    Checker::new(0x7090_0001)
        .cases(if cfg!(debug_assertions) { 12 } else { 64 })
        .suite("topo_fuzz_differential")
        .run("topo_fuzz_lockstep", gen_scenario, |sc| {
            match lockstep(sc) {
                Ok(n) => prop_assert!(n > 0, "soak must advance"),
                Err(msg) => prop_assert!(false, "{}", msg),
            }
            Ok(())
        });
}

/// Degenerate corners that must always be in the battery regardless of
/// what the fuzzer draws: one core with many threads (pure time-slicing),
/// more cores than threads (permanently idle cores), and exact
/// square shapes.
#[test]
fn pinned_corner_topologies_fast_matches_reference() {
    let corners: [(usize, usize); 4] = [(1, 4), (4, 2), (3, 3), (2, 5)];
    for (i, &(n_cores, n_threads)) in corners.iter().enumerate() {
        let sc = TopoScenario {
            cores: (0..n_cores)
                .map(|c| if c % 2 == 0 { CoreConfig::fp_core() } else { CoreConfig::int_core() })
                .collect(),
            benches: (0..n_threads).map(|t| BENCHES[t % BENCHES.len()]).collect(),
            seed: 2012 + i as u64,
            sched: (i % 4) as u8,
            storm_window: 5_000,
            epoch_cycles: 10_000,
            cycles: if cfg!(debug_assertions) { 30_000 } else { 100_000 },
        };
        let checkpoints = lockstep(&sc).unwrap_or_else(|msg| panic!("corner {i}: {msg}"));
        assert!(checkpoints > 0, "corner {i} must advance");
    }
}
