//! End-to-end integration tests spanning every crate: workload models →
//! core timing → memory → power → scheduling → metrics.

use ampsched::prelude::*;

fn pair(a: &str, b: &str, seed: u64) -> [Box<dyn Workload>; 2] {
    [
        Box::new(TraceGenerator::for_thread(
            suite::by_name(a).expect("benchmark"),
            seed,
            0,
        )),
        Box::new(TraceGenerator::for_thread(
            suite::by_name(b).expect("benchmark"),
            seed,
            1,
        )),
    ]
}

fn quick_system(workloads: [Box<dyn Workload>; 2]) -> DualCoreSystem {
    DualCoreSystem::new(
        SystemConfig {
            epoch_cycles: 200_000,
            ..SystemConfig::default()
        },
        workloads,
    )
}

#[test]
fn proposed_scheduler_corrects_a_misplaced_pair_end_to_end() {
    // intstress starts on the FP core, fpstress on the INT core — the
    // worst possible initial assignment.
    let mut sys = quick_system(pair("intstress", "fpstress", 5));
    let mut sched = ProposedScheduler::with_defaults();
    let r = sys.run(&mut sched, 300_000, 30_000_000);
    assert!(r.swaps >= 1);
    assert_eq!(sys.assignment().core_of(0), CoreKind::Int);

    // Compare against never swapping, same workloads and seeds.
    let mut sys2 = quick_system(pair("intstress", "fpstress", 5));
    let mut stat = StaticScheduler;
    let r2 = sys2.run(&mut stat, 300_000, 30_000_000);
    let speedup = weighted_speedup(&r.ipc_per_watt(), &r2.ipc_per_watt());
    assert!(
        speedup > 1.25,
        "correcting the worst-case assignment should win big: {speedup}"
    );
}

#[test]
fn all_five_schedulers_complete_on_the_same_pair() {
    let preds = {
        // A tiny synthetic predictor is enough for the smoke test.
        let pts: Vec<ampsched::sched::ProfilePoint> = (0..=10)
            .flat_map(|i| {
                (0..=(10 - i)).map(move |f| ampsched::sched::ProfilePoint {
                    int_pct: i as f64 * 10.0,
                    fp_pct: f as f64 * 10.0,
                    ppw_int_core: (1.0 + 0.012 * i as f64 * 10.0 - 0.02 * f as f64 * 10.0)
                        .max(0.2),
                    ppw_fp_core: 1.0,
                })
            })
            .collect();
        (
            RatioMatrix::from_points(&pts),
            RatioSurface::from_points(&pts),
        )
    };
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(StaticScheduler),
        Box::new(RoundRobinScheduler::every_epoch()),
        Box::new(HpeScheduler::new(HpePredictor::Matrix(preds.0.clone()))),
        Box::new(HpeScheduler::new(HpePredictor::Surface(preds.1.clone()))),
        Box::new(MatrixFineScheduler::new(HpePredictor::Matrix(preds.0))),
        Box::new(ProposedScheduler::with_defaults()),
    ];
    for sched in &mut schedulers {
        let mut sys = quick_system(pair("apsi", "gzip", 11));
        let r = sys.run(&mut **sched, 150_000, 20_000_000);
        assert!(
            r.threads[0].instructions + r.threads[1].instructions >= 150_000,
            "{} did not finish",
            r.scheduler
        );
        assert!(r.threads[0].joules > 0.0);
        assert!(r.ipc_per_watt().iter().all(|p| *p > 0.0), "{}", r.scheduler);
    }
}

#[test]
fn runs_are_bit_deterministic_across_constructions() {
    let run = || {
        let mut sys = quick_system(pair("mpeg2_dec", "twolf", 21));
        let mut sched = ProposedScheduler::with_defaults();
        sys.run(&mut sched, 250_000, 25_000_000)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.swaps, b.swaps);
    assert_eq!(a.threads[0].instructions, b.threads[0].instructions);
    assert_eq!(a.threads[1].instructions, b.threads[1].instructions);
    assert_eq!(a.threads[0].joules.to_bits(), b.threads[0].joules.to_bits());
}

#[test]
fn fairness_swap_shares_the_int_core_between_two_int_threads() {
    // Two INT-heavy threads: only the fairness rule can swap them.
    let mut sys = quick_system(pair("bitcount", "sha", 3));
    let mut sched = ProposedScheduler::new(ProposedConfig {
        fairness_interval_cycles: 200_000,
        ..ProposedConfig::default()
    });
    let r = sys.run(&mut sched, 1_000_000, 50_000_000);
    assert!(
        r.swaps >= 2,
        "same-flavor pair must be rotated for fairness, got {} swaps",
        r.swaps
    );
    // Both threads should make comparable progress (fairness).
    let (i0, i1) = (r.threads[0].instructions, r.threads[1].instructions);
    let balance = i0.min(i1) as f64 / i0.max(i1) as f64;
    assert!(balance > 0.4, "progress balance {balance} too skewed");
}

#[test]
fn swap_overhead_sweep_is_monotone_in_total_cycles_for_round_robin() {
    // With an unconditional swapper, higher overhead must not make runs
    // finish in fewer cycles.
    let mut cycles = Vec::new();
    for ovh in [100u64, 10_000, 50_000] {
        let mut sys = DualCoreSystem::new(
            SystemConfig {
                epoch_cycles: 100_000,
                swap_overhead_cycles: ovh,
                ..SystemConfig::default()
            },
            pair("gzip", "susan", 9),
        );
        let mut sched = RoundRobinScheduler::every_epoch();
        let r = sys.run(&mut sched, 200_000, 50_000_000);
        cycles.push(r.cycles);
    }
    assert!(
        cycles[0] <= cycles[1] && cycles[1] <= cycles[2],
        "cycles must grow with swap overhead: {cycles:?}"
    );
}

#[test]
fn energy_attribution_is_conserved_under_heavy_swapping() {
    // Short epochs so Round Robin swaps many times within the run.
    let mut sys = DualCoreSystem::new(
        SystemConfig {
            epoch_cycles: 50_000,
            ..SystemConfig::default()
        },
        pair("mixstress", "pi", 17),
    );
    let mut sched = RoundRobinScheduler::every_epoch();
    let r = sys.run(&mut sched, 400_000, 40_000_000);
    assert!(r.swaps > 3, "RR must swap repeatedly");
    // Total energy is positive and split across both threads.
    assert!(r.threads[0].joules > 0.0 && r.threads[1].joules > 0.0);
    // Watts in a plausible physical range for these cores.
    for t in &r.threads {
        let w = t.watts();
        assert!((0.5..6.0).contains(&w), "implausible power {w} W");
    }
}

#[test]
fn facade_prelude_compiles_and_reaches_every_crate() {
    // Touch one item per re-exported crate through the facade.
    let _ = ampsched::isa::OpClass::FpMul;
    let _ = ampsched::mem::MemConfig::default();
    let _ = ampsched::cpu::CoreConfig::int_core();
    let _ = ampsched::power::EnergyModel::new(
        &ampsched::cpu::CoreConfig::fp_core(),
        &ampsched::mem::MemConfig::default(),
    );
    let _ = ampsched::sched::SwapRules::default();
    let _ = ampsched::metrics::Table::new(&["a"]);
    let _ = ampsched::workloads::suite::all();
    let _ = ampsched::experiments::common::Params::quick();
}
